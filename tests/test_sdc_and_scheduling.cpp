// Tests for the two extensions beyond the paper's prototype: the
// SDC-detecting duplicate-verify mode (the Section-II comparison point) and
// the weighted LPT scheduler (the Section V-A "future strategies" remark).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "fault/failure.hpp"
#include "intra/runtime.hpp"
#include "rep_test_harness.hpp"

namespace repmpi::intra {
namespace {

using repmpi::testing::RepFixture;

IntraStats run_scaled_workload(Runtime::Mode mode, fault::FaultPlan* plan,
                               int capture_world_rank = 0,
                               SchedulePolicy policy =
                                   SchedulePolicy::kStaticBlock,
                               std::vector<double> weights = {}) {
  RepFixture f(1, 2);
  IntraStats captured;
  f.run([&](mpi::Proc& proc, rep::LogicalComm& comm) {
    Runtime rt(comm, {.mode = mode, .policy = policy, .faults = plan});
    std::vector<double> v(64, 1.0);
    {
      Section s(rt);
      const int id = rt.register_task(
          [](TaskArgs& a) -> net::ComputeCost {
            auto p = a.get<double>(0);
            for (double& x : p) x *= 2.0;
            return {static_cast<double>(p.size()), 16.0 * p.size()};
          },
          {{ArgTag::kInOut, 8}});
      for (int t = 0; t < 8; ++t) {
        const double w = weights.empty()
                             ? 1.0
                             : weights[static_cast<std::size_t>(t)];
        rt.launch(id,
                  {Binding::of(std::span<double>(v).subspan(
                      static_cast<std::size_t>(t) * 8, 8))},
                  w);
      }
    }
    if (proc.world_rank() == capture_world_rank) captured = rt.stats();
  });
  return captured;
}

TEST(Sdc, DuplicateVerifyDetectsInjectedCorruption) {
  fault::FaultPlan plan;
  plan.add_corruption({.world_rank = 1, .nth = 3});
  const IntraStats st =
      run_scaled_workload(Runtime::Mode::kDuplicateVerify, &plan);
  // The uncorrupted replica (world rank 0) must see exactly one divergence.
  EXPECT_EQ(st.sdc_detected, 1);
  EXPECT_EQ(st.sdc_injected, 0);  // rank 0 was not the injection target
}

TEST(Sdc, DuplicateVerifyCleanRunDetectsNothing) {
  const IntraStats st =
      run_scaled_workload(Runtime::Mode::kDuplicateVerify, nullptr);
  EXPECT_EQ(st.sdc_detected, 0);
}

TEST(Sdc, InjectionTargetCountsIt) {
  fault::FaultPlan plan;
  plan.add_corruption({.world_rank = 1, .nth = 3});
  const IntraStats st = run_scaled_workload(Runtime::Mode::kDuplicateVerify,
                                            &plan, /*capture=*/1);
  EXPECT_EQ(st.sdc_injected, 1);
  EXPECT_EQ(st.sdc_detected, 1);  // it also sees the divergence
}

TEST(Sdc, PlainReplicationMissesCorruption) {
  fault::FaultPlan plan;
  plan.add_corruption({.world_rank = 1, .nth = 3});
  const IntraStats st = run_scaled_workload(Runtime::Mode::kAllLocal, &plan);
  EXPECT_EQ(st.sdc_detected, 0);  // no comparison: silently divergent
}

TEST(Sdc, IntraShareModePropagatesCorruptionUndetected) {
  // The paper's point: intra-parallelization ships the corrupted output to
  // the sibling, so both replicas end up with the same wrong value — not
  // even divergence-detection would catch it afterwards.
  fault::FaultPlan plan;
  plan.add_corruption({.world_rank = 1, .nth = 2});
  RepFixture f(1, 2);
  std::vector<std::vector<double>> results(2);
  f.run([&](mpi::Proc& proc, rep::LogicalComm& comm) {
    Runtime rt(comm, {.mode = Runtime::Mode::kShared, .faults = &plan});
    std::vector<double> v(64, 1.0);
    {
      Section s(rt);
      const int id = rt.register_task(
          [](TaskArgs& a) -> net::ComputeCost {
            auto p = a.get<double>(0);
            for (double& x : p) x *= 2.0;
            return {static_cast<double>(p.size()), 16.0 * p.size()};
          },
          {{ArgTag::kInOut, 8}});
      for (int t = 0; t < 8; ++t)
        rt.launch(id, {Binding::of(std::span<double>(v).subspan(
                          static_cast<std::size_t>(t) * 8, 8))});
    }
    results[static_cast<std::size_t>(proc.world_rank())] = v;
  });
  // Both replicas agree (consistent!) but the value is corrupted.
  EXPECT_EQ(results[0], results[1]);
  EXPECT_NE(results[0], std::vector<double>(64, 2.0));
}

TEST(Sdc, VerifyModeCostsMoreThanPlainReplication) {
  RepFixture f_plain(1, 2), f_verify(1, 2);
  double t_plain = 0, t_verify = 0;
  auto body = [](Runtime::Mode mode, double* t_out) {
    return [mode, t_out](mpi::Proc& proc, rep::LogicalComm& comm) {
      Runtime rt(comm, {.mode = mode});
      std::vector<double> v(1 << 14, 1.0);
      for (int s = 0; s < 4; ++s) {
        Section sec(rt);
        const int id = rt.register_task(
            [](TaskArgs& a) -> net::ComputeCost {
              auto p = a.get<double>(0);
              for (double& x : p) x *= 1.5;
              return {static_cast<double>(p.size()), 16.0 * p.size()};
            },
            {{ArgTag::kInOut, 8}});
        const std::size_t chunk = v.size() / 8;
        for (int t = 0; t < 8; ++t)
          rt.launch(id, {Binding::of(std::span<double>(v).subspan(
                            chunk * static_cast<std::size_t>(t), chunk))});
      }
      *t_out = std::max(*t_out, proc.now());
    };
  };
  f_plain.run(body(Runtime::Mode::kAllLocal, &t_plain));
  f_verify.run(body(Runtime::Mode::kDuplicateVerify, &t_verify));
  EXPECT_GT(t_verify, t_plain);        // hashing + exchange costs
  EXPECT_LT(t_verify, t_plain * 2.0);  // bounded: one extra read pass
}

TEST(Scheduling, WeightedBeatsBlockOnImbalance) {
  auto run_policy = [](SchedulePolicy policy) {
    RepFixture f(1, 2);
    double t = 0;
    f.run([&](mpi::Proc& proc, rep::LogicalComm& comm) {
      Runtime rt(comm, {.mode = Runtime::Mode::kShared, .policy = policy});
      std::vector<double> out(8, 0.0);
      {
        Section s(rt);
        const int id = rt.register_task(
            [](TaskArgs& a) -> net::ComputeCost {
              const double w = a.scalar_in<double>(0);
              a.scalar<double>(1) = w * 2.0;
              return {w * 1e6, w * 4e6};
            },
            {{ArgTag::kIn, 8}, {ArgTag::kOut, 8}});
        static thread_local std::vector<double> weights;
        weights.assign({8, 7, 6, 5, 4, 3, 2, 1});
        for (int t2 = 0; t2 < 8; ++t2) {
          rt.launch(id,
                    {Binding::scalar(weights[static_cast<std::size_t>(t2)]),
                     Binding::scalar(out[static_cast<std::size_t>(t2)])},
                    weights[static_cast<std::size_t>(t2)]);
        }
      }
      t = std::max(t, proc.now());
    });
    return t;
  };
  const double t_block = run_policy(SchedulePolicy::kStaticBlock);
  const double t_weighted = run_policy(SchedulePolicy::kWeighted);
  // Block: lanes get {8,7,6,5}=26 vs {4,3,2,1}=10 — imbalanced.
  // LPT: {8,5,4,1}=18 vs {7,6,3,2}=18 — balanced.
  EXPECT_LT(t_weighted, 0.8 * t_block);
}

TEST(Scheduling, WeightedStaysCorrectAndConsistent) {
  std::vector<double> weights{3, 1, 4, 1, 5, 9, 2, 6};
  const IntraStats st =
      run_scaled_workload(Runtime::Mode::kShared, nullptr, 0,
                          SchedulePolicy::kWeighted, weights);
  EXPECT_EQ(st.tasks_executed + st.tasks_received, 8);
}

TEST(Scheduling, WeightedSurvivesCrash) {
  fault::FaultPlan plan;
  plan.add({.world_rank = 1, .site = fault::CrashSite::kAfterTaskExec,
            .nth = 1});
  std::vector<double> weights{3, 1, 4, 1, 5, 9, 2, 6};
  const IntraStats st =
      run_scaled_workload(Runtime::Mode::kShared, &plan, 0,
                          SchedulePolicy::kWeighted, weights);
  EXPECT_EQ(st.tasks_executed, 8);  // survivor ends up executing all
}

}  // namespace
}  // namespace repmpi::intra
