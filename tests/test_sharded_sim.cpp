// Sharded-engine tests: one simulation spread over N worker threads must be
// *bit-identical* to the same simulation on 1 shard — virtual wall-clock,
// phase times, event / message / byte counts, per-rank receive order — with
// only host wall-clock allowed to differ. Plus the failure modes: crashes
// announced across shards, deadlock detection spanning shards, and the
// detection-delay >= lookahead guard the conservative windows rely on.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/hpccg.hpp"
#include "apps/runner.hpp"
#include "fault/failure.hpp"
#include "net/machine_model.hpp"
#include "net/topology.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/sharded_world.hpp"
#include "support/error.hpp"

namespace repmpi {
namespace {

// --- direct substrate fixture ----------------------------------------------

struct ShardedFixture {
  ShardedFixture(int shards, int num_ranks, int cores_per_node = 4)
      : machine(shards, net::MachineModel{},
                net::Topology(num_ranks, cores_per_node), num_ranks) {}

  void run(std::function<void(mpi::Proc&, mpi::Comm&)> body) {
    machine.world().launch([body = std::move(body)](mpi::Proc& proc) {
      mpi::Comm comm = mpi::Comm::world(proc);
      body(proc, comm);
    });
    machine.run();
  }

  mpi::ShardedMachine machine;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Per-rank receive-stream fingerprint for an all-to-all-ish exchange with
/// wildcard receives: source, tag, payload and the *bit pattern* of the
/// receive completion time all enter the hash, so any reordering or timing
/// drift between shard layouts changes it.
std::vector<std::uint64_t> exchange_fingerprint(int shards, int num_ranks,
                                                int rounds) {
  ShardedFixture f(shards, num_ranks, /*cores_per_node=*/2);
  std::vector<std::uint64_t> fp(static_cast<std::size_t>(num_ranks), 0);
  f.run([&](mpi::Proc& proc, mpi::Comm& comm) {
    const int r = comm.rank();
    const int n = comm.size();
    for (int i = 0; i < rounds; ++i) {
      // Deterministic per-rank jitter so sends land at staggered instants.
      proc.elapse(1e-7 * static_cast<double>((r * 31 + i * 7) % 17));
      comm.send_value((r + 1 + i) % n, /*tag=*/i, r * 100 + i);
    }
    // For fixed i the destination map is a bijection, so every rank
    // receives exactly `rounds` messages.
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (int i = 0; i < rounds; ++i) {
      support::Buffer buf;
      mpi::Status st = comm.recv(mpi::kAnySource, mpi::kAnyTag, buf);
      h = mix(h, static_cast<std::uint64_t>(st.source));
      h = mix(h, static_cast<std::uint64_t>(st.tag));
      h = mix(h, static_cast<std::uint64_t>(support::from_buffer<int>(buf)));
      h = mix(h, std::bit_cast<std::uint64_t>(proc.now()));
    }
    fp[static_cast<std::size_t>(r)] = h;
  });
  return fp;
}

TEST(ShardedSubstrate, CrossShardExchangeIsShardCountInvariant) {
  const auto base = exchange_fingerprint(1, 8, 12);
  EXPECT_EQ(base, exchange_fingerprint(2, 8, 12));
  EXPECT_EQ(base, exchange_fingerprint(4, 8, 12));
  // More shards than nodes: the extra shards stay empty but must not
  // perturb anything.
  EXPECT_EQ(base, exchange_fingerprint(7, 8, 12));
}

TEST(ShardedSubstrate, ReportsWindowsAndCrossTraffic) {
  ShardedFixture f(2, 4, /*cores_per_node=*/2);
  f.run([&](mpi::Proc&, mpi::Comm& comm) {
    if (comm.rank() == 0) comm.send_value(3, 0, 42);  // node 0 -> node 1
    if (comm.rank() == 3) {
      EXPECT_EQ(comm.recv_value<int>(0, 0), 42);
    }
  });
  const auto st = f.machine.stats();
  EXPECT_GE(st.windows, 1u);
  EXPECT_EQ(st.internode_sends, 1u);
  EXPECT_GE(f.machine.counters().events, 4u);
}

TEST(ShardedSubstrate, DeadlockReportNamesTheStuckShard) {
  // Rank 3 (node 1 -> shard 1) waits for a message nobody sends; the other
  // ranks finish. The engine must aggregate the per-shard diagnoses.
  ShardedFixture f(2, 4, /*cores_per_node=*/2);
  try {
    f.run([&](mpi::Proc&, mpi::Comm& comm) {
      if (comm.rank() == 3) {
        support::Buffer buf;
        comm.recv(0, /*tag=*/99, buf);
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const support::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("[shard 1]"), std::string::npos)
        << e.what();
  }
}

TEST(ShardedSubstrate, DetectionDelayBelowLookaheadIsRejected) {
  // The conservative windows only stay conservative because a crash in
  // window W cannot be observed before W's horizon; detection_delay <
  // lookahead would break that, and crash() must say so loudly.
  ShardedFixture f(2, 4, /*cores_per_node=*/2);
  f.machine.world().set_detection_delay(1e-9);
  EXPECT_THROW(f.run([&](mpi::Proc& proc, mpi::Comm& comm) {
    if (comm.rank() == 0) proc.world().crash(0);
  }),
               support::InvariantError);
}

// --- full-application invariance -------------------------------------------

apps::RunResult run_hpccg(apps::RunMode mode, int shards,
                          fault::FaultPlan* faults = nullptr) {
  apps::RunConfig cfg;
  cfg.mode = mode;
  cfg.num_logical = 4;
  cfg.shards = shards;
  cfg.faults = faults;
  apps::HpccgParams p;
  p.nx = p.ny = p.nz = 10;
  p.iterations = 2;
  p.intra_ddot = true;
  p.intra_sparsemv = true;
  return apps::run_app(cfg, [&](apps::AppContext& ctx) { hpccg(ctx, p); });
}

void expect_bit_identical(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expect_identical(const apps::RunResult& a, const apps::RunResult& b) {
  expect_bit_identical(a.wallclock, b.wallclock, "wallclock");
  ASSERT_EQ(a.phase_max.size(), b.phase_max.size());
  for (const auto& [phase, t] : a.phase_max) {
    ASSERT_EQ(b.phase_max.count(phase), 1u) << phase;
    expect_bit_identical(t, b.phase_max.at(phase), phase.c_str());
  }
  const intra::IntraStats& x = a.intra_total;
  const intra::IntraStats& y = b.intra_total;
  expect_bit_identical(x.section_time, y.section_time, "section_time");
  expect_bit_identical(x.update_tail_time, y.update_tail_time,
                       "update_tail_time");
  EXPECT_EQ(x.sections, y.sections);
  EXPECT_EQ(x.tasks_executed, y.tasks_executed);
  EXPECT_EQ(x.tasks_received, y.tasks_received);
  EXPECT_EQ(x.tasks_reexecuted, y.tasks_reexecuted);
  EXPECT_EQ(x.update_bytes_sent, y.update_bytes_sent);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.ranks_finished, b.ranks_finished);
  EXPECT_EQ(a.ranks_crashed, b.ranks_crashed);
}

class ShardInvariance : public ::testing::TestWithParam<apps::RunMode> {};

INSTANTIATE_TEST_SUITE_P(Modes, ShardInvariance,
                         ::testing::Values(apps::RunMode::kNative,
                                           apps::RunMode::kReplicated,
                                           apps::RunMode::kIntra),
                         [](const auto& info) {
                           return std::string(apps::to_string(info.param));
                         });

TEST_P(ShardInvariance, HpccgBitIdenticalAcrossShardCounts) {
  const apps::RunResult one = run_hpccg(GetParam(), 1);
  const apps::RunResult two = run_hpccg(GetParam(), 2);
  const apps::RunResult four = run_hpccg(GetParam(), 4);
  expect_identical(one, two);
  expect_identical(one, four);
  EXPECT_GT(one.shard_windows, 0u);
  EXPECT_EQ(one.shard_cross_messages, two.shard_cross_messages);
  EXPECT_EQ(one.shard_cross_messages, four.shard_cross_messages);
}

TEST(ShardInvarianceFaults, CrashMidSectionBitIdenticalAcrossShardCounts) {
  const auto make_plan = [] {
    fault::FaultPlan p;
    p.add({.world_rank = 5, .site = fault::CrashSite::kAfterTaskExec,
           .nth = 2});
    return p;
  };
  fault::FaultPlan p1 = make_plan();
  fault::FaultPlan p2 = make_plan();
  fault::FaultPlan p4 = make_plan();
  const apps::RunResult one = run_hpccg(apps::RunMode::kIntra, 1, &p1);
  const apps::RunResult two = run_hpccg(apps::RunMode::kIntra, 2, &p2);
  const apps::RunResult four = run_hpccg(apps::RunMode::kIntra, 4, &p4);
  EXPECT_EQ(p1.fired(), 1);
  EXPECT_EQ(p2.fired(), 1);
  EXPECT_EQ(p4.fired(), 1);
  EXPECT_EQ(one.ranks_crashed, 1);
  expect_identical(one, two);
  expect_identical(one, four);
}

}  // namespace
}  // namespace repmpi
