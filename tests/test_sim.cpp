// Unit tests for the discrete-event simulator: event ordering, process
// lifecycle, park/unpark semantics, kill/unwind, determinism, deadlock
// detection.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace repmpi::sim {
namespace {

TEST(Sim, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Sim, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Sim, DelayAdvancesVirtualTime) {
  Simulator sim;
  Time t_end = -1;
  sim.spawn("p", [&](Context& ctx) {
    ctx.delay(1.5);
    ctx.delay(0.5);
    t_end = ctx.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t_end, 2.0);
}

TEST(Sim, ZeroDelayIsAllowed) {
  Simulator sim;
  bool done = false;
  sim.spawn("p", [&](Context& ctx) {
    ctx.delay(0.0);
    done = true;
  });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Sim, NegativeDelayThrows) {
  Simulator sim;
  sim.spawn("p", [&](Context& ctx) { ctx.delay(-1.0); });
  EXPECT_THROW(sim.run(), support::InvariantError);
}

TEST(Sim, ParkUnparkHandshake) {
  Simulator sim;
  Time woke_at = -1;
  const Pid sleeper = sim.spawn("sleeper", [&](Context& ctx) {
    ctx.park();
    woke_at = ctx.now();
  });
  sim.spawn("waker", [&](Context& ctx) {
    ctx.delay(2.0);
    ctx.simulator().unpark(sleeper);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(woke_at, 2.0);
}

TEST(Sim, ConditionLoopSurvivesEarlyWakeups) {
  // Waiters must loop on their condition (the pattern Comm::wait uses): an
  // unpark that lands while the target is inside an unrelated delay() is
  // absorbed there, so a bare park() can miss it — the loop cannot.
  Simulator sim;
  bool flag = false;
  bool observed = false;
  Pid sleeper = kNoPid;
  sleeper = sim.spawn("sleeper", [&](Context& ctx) {
    ctx.delay(1.0);  // waker's first unpark lands here and is absorbed
    while (!flag) ctx.park();
    observed = true;
  });
  sim.spawn("waker", [&](Context& ctx) {
    ctx.delay(0.5);
    ctx.simulator().unpark(sleeper);  // early, before the condition is set
    ctx.delay(1.0);
    flag = true;
    ctx.simulator().unpark(sleeper);  // real wakeup
  });
  sim.run();
  EXPECT_TRUE(observed);
}

TEST(Sim, DelayIsNotCutShortBySpuriousUnpark) {
  Simulator sim;
  Time t_end = -1;
  Pid p = kNoPid;
  p = sim.spawn("p", [&](Context& ctx) {
    ctx.delay(3.0);
    t_end = ctx.now();
  });
  sim.spawn("noise", [&](Context& ctx) {
    ctx.delay(1.0);
    ctx.simulator().unpark(p);
    ctx.delay(1.0);
    ctx.simulator().unpark(p);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t_end, 3.0);
}

TEST(Sim, KillUnwindsParkedProcess) {
  Simulator sim;
  bool cleanup_ran = false;
  bool after_park = false;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  const Pid victim = sim.spawn("victim", [&](Context& ctx) {
    Guard g{&cleanup_ran};
    ctx.park();
    after_park = true;
  });
  sim.spawn("killer", [&](Context& ctx) {
    ctx.delay(1.0);
    ctx.simulator().kill(victim);
  });
  sim.run();
  EXPECT_TRUE(cleanup_ran);      // RAII unwound
  EXPECT_FALSE(after_park);      // body did not continue
  EXPECT_FALSE(sim.alive(victim));
  EXPECT_TRUE(sim.finished(victim));
}

TEST(Sim, KillDuringDelayUnwindsAtWakeup) {
  Simulator sim;
  Time died_after = -1;
  const Pid victim = sim.spawn("victim", [&](Context& ctx) {
    ctx.delay(10.0);
    died_after = ctx.now();  // never reached
  });
  sim.spawn("killer", [&](Context& ctx) {
    ctx.delay(1.0);
    ctx.simulator().kill(victim);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(died_after, -1);
  EXPECT_TRUE(sim.finished(victim));
}

TEST(Sim, CheckKilledThrowsInsideComputeLoop) {
  Simulator sim;
  int iterations = 0;
  const Pid victim = sim.spawn("victim", [&](Context& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.delay(1.0);
      ctx.check_killed();
      ++iterations;
    }
  });
  sim.spawn("killer", [&](Context& ctx) {
    ctx.delay(5.5);
    ctx.simulator().kill(victim);
  });
  sim.run();
  EXPECT_EQ(iterations, 5);
}

TEST(Sim, DeadlockDetected) {
  Simulator sim;
  sim.spawn("stuck", [&](Context& ctx) { ctx.park(); });
  EXPECT_THROW(sim.run(), support::DeadlockError);
}

TEST(Sim, ExceptionInProcessPropagatesToRun) {
  Simulator sim;
  sim.spawn("thrower", [&](Context& ctx) {
    ctx.delay(1.0);
    throw support::UsageError("boom");
  });
  EXPECT_THROW(sim.run(), support::UsageError);
}

TEST(Sim, DynamicSpawnDuringRun) {
  Simulator sim;
  Time child_start = -1;
  sim.spawn("parent", [&](Context& ctx) {
    ctx.delay(2.0);
    ctx.simulator().spawn("child", [&](Context& cctx) {
      child_start = cctx.now();
      cctx.delay(1.0);
    });
    ctx.delay(5.0);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(child_start, 2.0);
}

TEST(Sim, ManyProcessesInterleaveDeterministically) {
  auto fingerprint = [] {
    Simulator sim;
    std::vector<std::pair<Pid, Time>> trace;
    sim.set_switch_hook([&](Pid p, Time t) { trace.emplace_back(p, t); });
    constexpr int kN = 64;
    for (int i = 0; i < kN; ++i) {
      // += instead of operator+(const char*, string&&): the latter trips
      // GCC 12's -Wrestrict false positive (PR105651) under -Werror.
      std::string name = "p";
      name += std::to_string(i);
      sim.spawn(name, [i](Context& ctx) {
        for (int k = 0; k < 10; ++k) ctx.delay(0.001 * ((i * 7 + k) % 13 + 1));
      });
    }
    sim.run();
    return trace;
  };
  const auto a = fingerprint();
  const auto b = fingerprint();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
}

TEST(Sim, EventCountTracksExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Sim, ProcessNamesAreStored) {
  Simulator sim;
  const Pid p = sim.spawn("alpha", [](Context&) {});
  EXPECT_EQ(sim.name(p), "alpha");
  sim.run();
}

TEST(Sim, ScheduleInPastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), support::InvariantError);
  });
  sim.run();
}

}  // namespace
}  // namespace repmpi::sim
