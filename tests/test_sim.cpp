// Unit tests for the discrete-event simulator: event ordering, process
// lifecycle, park/unpark semantics, kill/unwind, determinism, deadlock
// detection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace repmpi::sim {
namespace {

TEST(Sim, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Sim, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Sim, DelayAdvancesVirtualTime) {
  Simulator sim;
  Time t_end = -1;
  sim.spawn("p", [&](Context& ctx) {
    ctx.delay(1.5);
    ctx.delay(0.5);
    t_end = ctx.now();
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t_end, 2.0);
}

TEST(Sim, ZeroDelayIsAllowed) {
  Simulator sim;
  bool done = false;
  sim.spawn("p", [&](Context& ctx) {
    ctx.delay(0.0);
    done = true;
  });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Sim, NegativeDelayThrows) {
  Simulator sim;
  sim.spawn("p", [&](Context& ctx) { ctx.delay(-1.0); });
  EXPECT_THROW(sim.run(), support::InvariantError);
}

TEST(Sim, ParkUnparkHandshake) {
  Simulator sim;
  Time woke_at = -1;
  const Pid sleeper = sim.spawn("sleeper", [&](Context& ctx) {
    ctx.park();
    woke_at = ctx.now();
  });
  sim.spawn("waker", [&](Context& ctx) {
    ctx.delay(2.0);
    ctx.simulator().unpark(sleeper);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(woke_at, 2.0);
}

TEST(Sim, ConditionLoopSurvivesEarlyWakeups) {
  // Waiters must loop on their condition (the pattern Comm::wait uses): an
  // unpark that lands while the target is inside an unrelated delay() is
  // absorbed there, so a bare park() can miss it — the loop cannot.
  Simulator sim;
  bool flag = false;
  bool observed = false;
  Pid sleeper = kNoPid;
  sleeper = sim.spawn("sleeper", [&](Context& ctx) {
    ctx.delay(1.0);  // waker's first unpark lands here and is absorbed
    while (!flag) ctx.park();
    observed = true;
  });
  sim.spawn("waker", [&](Context& ctx) {
    ctx.delay(0.5);
    ctx.simulator().unpark(sleeper);  // early, before the condition is set
    ctx.delay(1.0);
    flag = true;
    ctx.simulator().unpark(sleeper);  // real wakeup
  });
  sim.run();
  EXPECT_TRUE(observed);
}

TEST(Sim, DelayIsNotCutShortBySpuriousUnpark) {
  Simulator sim;
  Time t_end = -1;
  Pid p = kNoPid;
  p = sim.spawn("p", [&](Context& ctx) {
    ctx.delay(3.0);
    t_end = ctx.now();
  });
  sim.spawn("noise", [&](Context& ctx) {
    ctx.delay(1.0);
    ctx.simulator().unpark(p);
    ctx.delay(1.0);
    ctx.simulator().unpark(p);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(t_end, 3.0);
}

TEST(Sim, KillUnwindsParkedProcess) {
  Simulator sim;
  bool cleanup_ran = false;
  bool after_park = false;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  const Pid victim = sim.spawn("victim", [&](Context& ctx) {
    Guard g{&cleanup_ran};
    ctx.park();
    after_park = true;
  });
  sim.spawn("killer", [&](Context& ctx) {
    ctx.delay(1.0);
    ctx.simulator().kill(victim);
  });
  sim.run();
  EXPECT_TRUE(cleanup_ran);      // RAII unwound
  EXPECT_FALSE(after_park);      // body did not continue
  EXPECT_FALSE(sim.alive(victim));
  EXPECT_TRUE(sim.finished(victim));
}

TEST(Sim, KillDuringDelayUnwindsAtWakeup) {
  Simulator sim;
  Time died_after = -1;
  const Pid victim = sim.spawn("victim", [&](Context& ctx) {
    ctx.delay(10.0);
    died_after = ctx.now();  // never reached
  });
  sim.spawn("killer", [&](Context& ctx) {
    ctx.delay(1.0);
    ctx.simulator().kill(victim);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(died_after, -1);
  EXPECT_TRUE(sim.finished(victim));
}

TEST(Sim, CheckKilledThrowsInsideComputeLoop) {
  Simulator sim;
  int iterations = 0;
  const Pid victim = sim.spawn("victim", [&](Context& ctx) {
    for (int i = 0; i < 100; ++i) {
      ctx.delay(1.0);
      ctx.check_killed();
      ++iterations;
    }
  });
  sim.spawn("killer", [&](Context& ctx) {
    ctx.delay(5.5);
    ctx.simulator().kill(victim);
  });
  sim.run();
  EXPECT_EQ(iterations, 5);
}

TEST(Sim, DeadlockDetected) {
  Simulator sim;
  sim.spawn("stuck", [&](Context& ctx) { ctx.park(); });
  EXPECT_THROW(sim.run(), support::DeadlockError);
}

TEST(Sim, ExceptionInProcessPropagatesToRun) {
  Simulator sim;
  sim.spawn("thrower", [&](Context& ctx) {
    ctx.delay(1.0);
    throw support::UsageError("boom");
  });
  EXPECT_THROW(sim.run(), support::UsageError);
}

TEST(Sim, DynamicSpawnDuringRun) {
  Simulator sim;
  Time child_start = -1;
  sim.spawn("parent", [&](Context& ctx) {
    ctx.delay(2.0);
    ctx.simulator().spawn("child", [&](Context& cctx) {
      child_start = cctx.now();
      cctx.delay(1.0);
    });
    ctx.delay(5.0);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(child_start, 2.0);
}

TEST(Sim, ManyProcessesInterleaveDeterministically) {
  auto fingerprint = [] {
    Simulator sim;
    std::vector<std::pair<Pid, Time>> trace;
    sim.set_switch_hook([&](Pid p, Time t) { trace.emplace_back(p, t); });
    constexpr int kN = 64;
    for (int i = 0; i < kN; ++i) {
      // += instead of operator+(const char*, string&&): the latter trips
      // GCC 12's -Wrestrict false positive (PR105651) under -Werror.
      std::string name = "p";
      name += std::to_string(i);
      sim.spawn(name, [i](Context& ctx) {
        for (int k = 0; k < 10; ++k) ctx.delay(0.001 * ((i * 7 + k) % 13 + 1));
      });
    }
    sim.run();
    return trace;
  };
  const auto a = fingerprint();
  const auto b = fingerprint();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
}

TEST(Sim, EventCountTracksExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Sim, ProcessNamesAreStored) {
  Simulator sim;
  const Pid p = sim.spawn("alpha", [](Context&) {});
  EXPECT_EQ(sim.name(p), "alpha");
  sim.run();
}

TEST(Sim, ScheduleInPastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), support::InvariantError);
  });
  sim.run();
}

// --- Same-timestamp FIFO stability ------------------------------------------
// These pin the tie-break contract the event queue must preserve: events with
// equal timestamps run in schedule order (sequence-numbered FIFO), no matter
// whether they were scheduled ahead of time, from inside a tied event, or as
// unpark/kill resumes. Execution order among ties is semantically load-
// bearing (it decides NIC reservation order in the network model), so any
// queue replacement is verified against these, not vice versa.

TEST(Sim, EventScheduledAtNowRunsAfterPendingTies) {
  // C is created at t=1 from inside A, so it carries a later sequence number
  // than the pre-scheduled B and must run after it.
  Simulator sim;
  std::vector<char> order;
  sim.schedule_at(1.0, [&] {
    order.push_back('A');
    sim.schedule_at(1.0, [&] { order.push_back('C'); });
  });
  sim.schedule_at(1.0, [&] { order.push_back('B'); });
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C'}));
}

TEST(Sim, ChainedSameTimeSchedulingStaysFifo) {
  // Each tied event appends the next; the chain must interleave strictly
  // after all previously queued ties, producing pure schedule order.
  Simulator sim;
  std::vector<int> order;
  std::function<void(int)> chain = [&](int depth) {
    order.push_back(depth);
    if (depth < 5) sim.schedule_at(2.0, [&chain, depth] { chain(depth + 1); });
  };
  sim.schedule_at(2.0, [&] { chain(0); });
  sim.schedule_at(2.0, [&] { order.push_back(100); });
  sim.schedule_at(2.0, [&] { order.push_back(101); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 100, 101, 1, 2, 3, 4, 5}));
}

TEST(Sim, UnparkRunsAfterPendingSameTimeEvents) {
  // The resume created by unpark is sequenced like any other event: ties
  // already in the queue at unpark time run first.
  Simulator sim;
  std::vector<char> order;
  const Pid sleeper = sim.spawn("sleeper", [&](Context& ctx) {
    ctx.park();
    order.push_back('W');
  });
  sim.schedule_at(1.0, [&] {
    order.push_back('A');
    sim.unpark(sleeper);
  });
  sim.schedule_at(1.0, [&] { order.push_back('B'); });
  sim.schedule_at(1.0, [&] { order.push_back('C'); });
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'C', 'W'}));
}

TEST(Sim, UnparkOrderDecidesSameTimeWakeOrder) {
  // Several parked processes unparked back-to-back at one timestamp wake in
  // unpark order, not pid order.
  Simulator sim;
  std::vector<int> woke;
  std::vector<Pid> pids;
  for (int i = 0; i < 3; ++i) {
    // += instead of operator+(const char*, string&&): the latter trips
    // GCC 12's -Wrestrict false positive (PR105651) under -Werror.
    std::string name = "p";
    name += std::to_string(i);
    pids.push_back(sim.spawn(name, [&woke, i](Context& ctx) {
      ctx.park();
      woke.push_back(i);
    }));
  }
  sim.schedule_at(1.0, [&] {
    sim.unpark(pids[2]);
    sim.unpark(pids[0]);
    sim.unpark(pids[1]);
  });
  sim.run();
  EXPECT_EQ(woke, (std::vector<int>{2, 0, 1}));
}

TEST(Sim, KillDuringTiedBatchUnwindsAfterRemainingTies) {
  // kill() wakes the victim through a fresh resume, so events already tied
  // at the kill timestamp run before the victim's stack unwinds.
  Simulator sim;
  std::vector<std::string> order;
  struct Guard {
    std::vector<std::string>* log;
    ~Guard() { log->push_back("unwind"); }
  };
  const Pid victim = sim.spawn("victim", [&](Context& ctx) {
    Guard g{&order};
    ctx.park();
  });
  sim.schedule_at(1.0, [&] {
    order.push_back("kill");
    sim.kill(victim);
  });
  sim.schedule_at(1.0, [&] { order.push_back("tie"); });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"kill", "tie", "unwind"}));
  EXPECT_TRUE(sim.finished(victim));
}

TEST(Sim, UnparkThenDelayYieldsToWokenProcessFirst) {
  // A wakes B then delays: B's same-time resume precedes A's future resume,
  // so the delay cannot take the advance-in-place fast path past it.
  Simulator sim;
  std::vector<std::pair<char, Time>> order;
  Pid b = kNoPid;
  b = sim.spawn("b", [&](Context& ctx) {
    ctx.park();
    order.emplace_back('b', ctx.now());
  });
  sim.spawn("a", [&](Context& ctx) {
    ctx.delay(1.0);
    ctx.simulator().unpark(b);
    ctx.delay(0.5);
    order.emplace_back('a', ctx.now());
  });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, 'b');
  EXPECT_DOUBLE_EQ(order[0].second, 1.0);
  EXPECT_EQ(order[1].first, 'a');
  EXPECT_DOUBLE_EQ(order[1].second, 1.5);
}

TEST(Sim, MixedScaleTimestampsPopInStableGlobalOrder) {
  // Deterministic pseudo-random mix of microsecond-scale (comm latency) and
  // second-scale (compute delay) timestamps, with duplicates: pops must
  // follow (time, schedule order) exactly. Exercises near/far routing and
  // re-anchoring in a tiered queue.
  Simulator sim;
  std::vector<std::pair<double, int>> expected;
  std::vector<std::pair<double, int>> got;
  std::uint64_t state = 0x12345678ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40);
  };
  for (int i = 0; i < 2000; ++i) {
    double t;
    const double r = next();
    if (i % 10 == 3) {
      t = 2.5;  // repeated exact tie across scales
    } else if (i % 3 == 0) {
      t = 1e-6 * (1.0 + r / 1e3);  // near-future comm scale
    } else {
      t = 1.0 + r / 1e4;  // far compute scale
    }
    expected.emplace_back(t, i);
    sim.schedule_at(t, [&got, t, i] { got.emplace_back(t, i); });
  }
  std::stable_sort(
      expected.begin(), expected.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run();
  EXPECT_TRUE(got == expected);
}

TEST(Sim, HugeTimestampAfterCommScaleTrafficStillDrains) {
  // Regression: once the queue's width estimate has tuned itself to
  // microsecond leads, an event at a timestamp so large that a
  // comm-scale window rounds away in double (base + 512*w == base) must
  // still drain — the re-anchor path has to guarantee progress instead of
  // re-anchoring forever.
  Simulator sim;
  int ran = 0;
  Time last = -1;
  // Two interleaved delayers: every delay sees the other's pending resume,
  // takes the slow path, and feeds a ~2 us lead to the width estimator.
  for (int pnum = 0; pnum < 2; ++pnum) {
    std::string pname = "p";
    pname += std::to_string(pnum);
    sim.spawn(std::move(pname), [](Context& ctx) {
      for (int i = 0; i < 2000; ++i) ctx.delay(2e-6);
    });
  }
  sim.schedule_at(1e13, [&] { ++ran; });
  sim.schedule_at(1e13, [&] { ++ran; });
  sim.schedule_at(2e13, [&] {
    ++ran;
    last = sim.now();
  });
  sim.run();
  EXPECT_EQ(ran, 3);
  EXPECT_DOUBLE_EQ(last, 2e13);
}

// --- LadderQueue driven directly -------------------------------------------

/// Stable-address node arena for driving the queue without a Simulator.
struct NodeArena {
  std::deque<EventNode> pool;

  EventNode* make(Time t, std::uint64_t seq) {
    pool.emplace_back();
    pool.back().t = t;
    pool.back().seq = seq;
    return &pool.back();
  }
};

TEST(LadderQueue, DrainResetsEpochForReuse) {
  // Regression: drain() used to keep the old epoch's window (base_, cur_,
  // active_end_, width estimate). Reusing the queue with timestamps *below*
  // the stale base then computed a negative bucket offset (undefined
  // unsigned conversion), and a stale active_end_ silently degraded every
  // push to a sorted-lane insert. A drained queue must behave like a
  // freshly constructed one.
  LadderQueue q;
  NodeArena arena;
  // First epoch: anchor the window around t ~ 1e9 and consume half of it so
  // base_/cur_ move well past zero.
  for (int i = 0; i < 300; ++i) {
    q.push(arena.make(1e9 + 1e-6 * i, static_cast<std::uint64_t>(i)), 1e9);
  }
  for (int i = 0; i < 150; ++i) ASSERT_NE(q.pop(), nullptr);
  int drained = 0;
  q.drain([&](EventNode*) { ++drained; });
  EXPECT_EQ(drained, 150);
  ASSERT_TRUE(q.empty());

  // Second epoch: near-zero timestamps, pushed in reverse, must pop in
  // strict (t, seq) order and all come back out.
  std::uint64_t seq = 1000;
  for (int i = 299; i >= 0; --i) q.push(arena.make(1e-9 * i, seq++), 0.0);
  double last = -1.0;
  int popped = 0;
  while (EventNode* n = q.pop()) {
    EXPECT_GT(n->t, last);
    last = n->t;
    ++popped;
  }
  EXPECT_EQ(popped, 300);
  EXPECT_DOUBLE_EQ(last, 1e-9 * 299);
}

TEST(LadderQueue, RandomizedDifferentialAgainstPriorityQueue) {
  // Differential check against std::priority_queue on adversarial mixes:
  // huge bases, denormal / near-zero leads, exact same-instant bursts, and
  // heavy far-tier tails, with pops interleaved. Every pop must match the
  // reference's strict (t, seq) minimum bit-for-bit.
  using Ref = std::pair<double, std::uint64_t>;
  const double bases[] = {0.0, 1e15, 1.0};
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                          (trial * 0x517cc1b727220a95ULL + 0xda3e39cb94b95bdbULL);
    auto rnd = [&state] {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return state >> 11;
    };
    LadderQueue q;
    NodeArena arena;
    std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> ref;
    double now = bases[trial % 3];
    double last_t = now;
    std::uint64_t seq = 0;
    const auto step = [&] {
      if (!ref.empty() && rnd() % 4 == 0) {
        EventNode* n = q.pop();
        ASSERT_NE(n, nullptr);
        ASSERT_EQ(n->t, ref.top().first);
        ASSERT_EQ(n->seq, ref.top().second);
        now = n->t;
        ref.pop();
        return;
      }
      double t;
      switch (rnd() % 6) {
        case 0:
          t = last_t;  // exact same-instant burst (reuses a prior timestamp)
          break;
        case 1:
          t = now + 5e-318 * static_cast<double>(1 + rnd() % 3);  // denormal
          break;
        case 2:
          t = now;  // zero lead
          break;
        case 3:
          t = now + 1e-9 * static_cast<double>(rnd() % 4000);  // comm scale
          break;
        case 4:  // heavy tail: leads spanning 12 decades
          t = now + 1e-6 * std::pow(10.0, static_cast<double>(rnd() % 12));
          break;
        default:
          t = now + 1e15;  // far tier
          break;
      }
      if (t < now) t = now;  // FP guard; the contract forbids past pushes
      last_t = t;
      q.push(arena.make(t, seq), now);
      ref.emplace(t, seq);
      ++seq;
    };
    for (int op = 0; op < 4000; ++op) step();
    while (!ref.empty()) {
      EventNode* n = q.pop();
      ASSERT_NE(n, nullptr);
      ASSERT_EQ(n->t, ref.top().first);
      ASSERT_EQ(n->seq, ref.top().second);
      now = n->t;
      ref.pop();
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pop(), nullptr);
  }
}

}  // namespace
}  // namespace repmpi::sim
