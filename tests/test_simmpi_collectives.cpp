// Collective tests for the MPI substrate, parameterized over communicator
// sizes (including non-powers-of-two) to exercise the tree/ring algorithms.

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "mpi_test_harness.hpp"

namespace repmpi::mpi {
namespace {

using repmpi::testing::MpiFixture;

class Collectives : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16),
                         [](const auto& info) {
                           // += avoids GCC 12's -Wrestrict false positive
                           // (PR105651) on operator+(const char*, string&&).
                           std::string s = "n";
                           s += std::to_string(info.param);
                           return s;
                         });

TEST_P(Collectives, BarrierCompletes) {
  const int n = GetParam();
  MpiFixture f(n);
  int through = 0;
  f.run([&](Proc&, Comm& comm) {
    comm.barrier();
    ++through;
  });
  EXPECT_EQ(through, n);
}

TEST_P(Collectives, BcastValueFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    MpiFixture f(n);
    std::vector<double> got(static_cast<std::size_t>(n), 0.0);
    f.run([&](Proc&, Comm& comm) {
      const double v = comm.rank() == root ? 12.5 : 0.0;
      got[static_cast<std::size_t>(comm.rank())] = comm.bcast_value(v, root);
    });
    for (double g : got) EXPECT_DOUBLE_EQ(g, 12.5);
  }
}

TEST_P(Collectives, BcastVector) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<int> sums(static_cast<std::size_t>(n), 0);
  f.run([&](Proc&, Comm& comm) {
    std::vector<int> data(100);
    if (comm.rank() == 0) std::iota(data.begin(), data.end(), 1);
    comm.bcast(std::span<int>(data), 0);
    sums[static_cast<std::size_t>(comm.rank())] =
        std::accumulate(data.begin(), data.end(), 0);
  });
  for (int s : sums) EXPECT_EQ(s, 5050);
}

TEST_P(Collectives, ReduceSumToRoot) {
  const int n = GetParam();
  MpiFixture f(n);
  double at_root = -1;
  f.run([&](Proc&, Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    double out = 0;
    comm.reduce(std::span<const double>(&mine, 1), std::span<double>(&out, 1),
                ReduceOp::kSum, 0);
    if (comm.rank() == 0) at_root = out;
  });
  EXPECT_DOUBLE_EQ(at_root, n * (n + 1) / 2.0);
}

TEST_P(Collectives, ReduceMaxMinProd) {
  const int n = GetParam();
  MpiFixture f(n);
  double mx = 0, mn = 0;
  f.run([&](Proc&, Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    mx = comm.allreduce_value(mine, ReduceOp::kMax);
    mn = comm.allreduce_value(mine, ReduceOp::kMin);
  });
  EXPECT_DOUBLE_EQ(mx, n);
  EXPECT_DOUBLE_EQ(mn, 1.0);
}

TEST_P(Collectives, AllreduceEveryRankSeesSum) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<double> got(static_cast<std::size_t>(n), 0.0);
  f.run([&](Proc&, Comm& comm) {
    got[static_cast<std::size_t>(comm.rank())] = comm.allreduce_value(
        static_cast<double>(comm.rank() + 1), ReduceOp::kSum);
  });
  for (double g : got) EXPECT_DOUBLE_EQ(g, n * (n + 1) / 2.0);
}

TEST_P(Collectives, AllreduceVector) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<int> results(static_cast<std::size_t>(n), 0);
  f.run([&](Proc&, Comm& comm) {
    std::vector<double> in(16), out(16);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = static_cast<double>(i) + comm.rank();
    comm.allreduce(std::span<const double>(in), std::span<double>(out),
                   ReduceOp::kSum);
    bool ok = true;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double expect =
          n * static_cast<double>(i) + n * (n - 1) / 2.0;
      if (out[i] != expect) ok = false;
    }
    results[static_cast<std::size_t>(comm.rank())] = ok ? 1 : 0;
  });
  for (int r : results) EXPECT_EQ(r, 1);
}

TEST_P(Collectives, GatherCollectsInRankOrder) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<int> all(static_cast<std::size_t>(2 * n), -1);
  f.run([&](Proc&, Comm& comm) {
    const std::array<int, 2> mine{comm.rank(), comm.rank() * 100};
    comm.gather(std::span<const int>(mine), std::span<int>(all), 0);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
    EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 100);
  }
}

TEST_P(Collectives, AllgatherEveryoneHasEverything) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<int> ok(static_cast<std::size_t>(n), 0);
  f.run([&](Proc&, Comm& comm) {
    const int mine = comm.rank() + 7;
    std::vector<int> all(static_cast<std::size_t>(n));
    comm.allgather(std::span<const int>(&mine, 1), std::span<int>(all));
    bool good = true;
    for (int r = 0; r < n; ++r)
      if (all[static_cast<std::size_t>(r)] != r + 7) good = false;
    ok[static_cast<std::size_t>(comm.rank())] = good ? 1 : 0;
  });
  for (int o : ok) EXPECT_EQ(o, 1);
}

TEST_P(Collectives, ScatterDistributesBlocks) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<int> got(static_cast<std::size_t>(n), -1);
  f.run([&](Proc&, Comm& comm) {
    std::vector<int> all;
    if (comm.rank() == 0) {
      all.resize(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i * i;
    }
    int mine = -1;
    comm.scatter(std::span<const int>(all), std::span<int>(&mine, 1), 0);
    got[static_cast<std::size_t>(comm.rank())] = mine;
  });
  for (int r = 0; r < n; ++r) EXPECT_EQ(got[static_cast<std::size_t>(r)], r * r);
}

TEST_P(Collectives, AlltoallTransposes) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<int> ok(static_cast<std::size_t>(n), 0);
  f.run([&](Proc&, Comm& comm) {
    // Element sent from rank r to rank c is r*1000 + c.
    std::vector<int> in(static_cast<std::size_t>(n)), out(
        static_cast<std::size_t>(n));
    for (int c = 0; c < n; ++c)
      in[static_cast<std::size_t>(c)] = comm.rank() * 1000 + c;
    comm.alltoall(std::span<const int>(in), std::span<int>(out));
    bool good = true;
    for (int r = 0; r < n; ++r)
      if (out[static_cast<std::size_t>(r)] != r * 1000 + comm.rank())
        good = false;
    ok[static_cast<std::size_t>(comm.rank())] = good ? 1 : 0;
  });
  for (int o : ok) EXPECT_EQ(o, 1);
}

TEST_P(Collectives, SplitByParity) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  MpiFixture f(n);
  std::vector<int> subsums(static_cast<std::size_t>(n), 0);
  f.run([&](Proc&, Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    subsums[static_cast<std::size_t>(comm.rank())] =
        sub.allreduce_value(comm.rank(), ReduceOp::kSum);
  });
  int even_sum = 0, odd_sum = 0;
  for (int r = 0; r < n; ++r) (r % 2 ? odd_sum : even_sum) += r;
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(subsums[static_cast<std::size_t>(r)], r % 2 ? odd_sum : even_sum);
}

TEST_P(Collectives, SplitRanksFollowKeyOrder) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<int> newranks(static_cast<std::size_t>(n), -1);
  f.run([&](Proc&, Comm& comm) {
    // Reverse order via descending keys.
    Comm sub = comm.split(0, n - comm.rank());
    newranks[static_cast<std::size_t>(comm.rank())] = sub.rank();
  });
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(newranks[static_cast<std::size_t>(r)], n - 1 - r);
}

TEST_P(Collectives, DupIsolatesTraffic) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  MpiFixture f(n);
  int got_on_dup = -1, got_on_orig = -1;
  f.run([&](Proc&, Comm& comm) {
    Comm d = comm.dup();
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 10);
      d.send_value(1, 1, 20);
    } else if (comm.rank() == 1) {
      // Receive on the dup first: tags/sources identical, channel must
      // disambiguate.
      got_on_dup = d.recv_value<int>(0, 1);
      got_on_orig = comm.recv_value<int>(0, 1);
    }
  });
  EXPECT_EQ(got_on_dup, 20);
  EXPECT_EQ(got_on_orig, 10);
}


TEST_P(Collectives, SendrecvRingShift) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  MpiFixture f(n);
  std::vector<int> got(static_cast<std::size_t>(n), -1);
  f.run([&](Proc&, Comm& comm) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() - 1 + n) % n;
    const std::array<int, 1> mine{comm.rank() * 3};
    std::array<int, 1> in{-1};
    comm.sendrecv<int>(next, 5, mine, prev, 5, in);
    got[static_cast<std::size_t>(comm.rank())] = in[0];
  });
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(got[static_cast<std::size_t>(r)], ((r - 1 + n) % n) * 3);
}

TEST_P(Collectives, ScanInclusivePrefix) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<double> got(static_cast<std::size_t>(n), 0.0);
  f.run([&](Proc&, Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    double out = 0;
    comm.scan(std::span<const double>(&mine, 1), std::span<double>(&out, 1),
              ReduceOp::kSum);
    got[static_cast<std::size_t>(comm.rank())] = out;
  });
  for (int r = 0; r < n; ++r)
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)],
                     (r + 1) * (r + 2) / 2.0);
}

TEST_P(Collectives, ReduceScatterBlocks) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<double> got(static_cast<std::size_t>(n), 0.0);
  f.run([&](Proc&, Comm& comm) {
    // Everyone contributes in[i] = i; reduction is n*i; block r is element r.
    std::vector<double> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      in[static_cast<std::size_t>(i)] = static_cast<double>(i);
    double mine = -1;
    comm.reduce_scatter(std::span<const double>(in),
                        std::span<double>(&mine, 1), ReduceOp::kSum);
    got[static_cast<std::size_t>(comm.rank())] = mine;
  });
  for (int r = 0; r < n; ++r)
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)],
                     static_cast<double>(n) * r);
}

TEST_P(Collectives, ScanMaxIsRunningMax) {
  const int n = GetParam();
  MpiFixture f(n);
  std::vector<double> got(static_cast<std::size_t>(n), 0.0);
  f.run([&](Proc&, Comm& comm) {
    // Values zig-zag so the running max is non-trivial.
    const double mine = comm.rank() % 2 ? 100.0 - comm.rank() : comm.rank();
    double out = 0;
    comm.scan(std::span<const double>(&mine, 1), std::span<double>(&out, 1),
              ReduceOp::kMax);
    got[static_cast<std::size_t>(comm.rank())] = out;
  });
  double running = -1e300;
  for (int r = 0; r < n; ++r) {
    const double v = r % 2 ? 100.0 - r : r;
    running = std::max(running, v);
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)], running);
  }
}

TEST(CollectivesTiming, BcastScalesLogarithmically) {
  // Binomial bcast over p ranks should take ~ceil(log2 p) latency steps,
  // clearly below a linear fan-out.
  net::MachineModel m;
  m.net_latency = 1e-5;
  m.net_bandwidth = 1e12;
  m.send_overhead = 0;
  m.recv_overhead = 0;
  m.mem_bandwidth = 1e18;
  m.intranode_latency = 1e-5;  // make every hop equal for simple counting
  m.intranode_bandwidth = 1e12;
  MpiFixture f(16, 4, m);
  sim::Time finish = 0;
  f.run([&](Proc& proc, Comm& comm) {
    double v = comm.rank() == 0 ? 1.0 : 0.0;
    comm.bcast_value(v, 0);
    finish = std::max(finish, proc.now());
  });
  EXPECT_LT(finish, 8 * 1e-5);   // log2(16)=4 rounds, allow slack
  EXPECT_GT(finish, 3 * 1e-5);
}

}  // namespace
}  // namespace repmpi::mpi
