// Point-to-point tests for the MPI substrate: blocking/nonblocking transfer,
// matching rules (tags, wildcards, ordering), timing, failure signalling.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "mpi_test_harness.hpp"
#include "support/error.hpp"

namespace repmpi::mpi {
namespace {

using repmpi::testing::MpiFixture;

TEST(P2P, BlockingSendRecvScalar) {
  MpiFixture f(2);
  double got = 0;
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/7, 3.25);
    } else {
      got = comm.recv_value<double>(0, 7);
    }
  });
  EXPECT_DOUBLE_EQ(got, 3.25);
}

TEST(P2P, SendRecvVector) {
  MpiFixture f(2);
  std::vector<double> got(128, 0.0);
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> data(128);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<double>(i) * 0.5;
      comm.send_span<double>(1, 3, data);
    } else {
      Status st = comm.recv_span<double>(0, 3, got);
      EXPECT_FALSE(st.failed);
      EXPECT_EQ(st.bytes, 128 * sizeof(double));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 3);
    }
  });
  EXPECT_DOUBLE_EQ(got[100], 50.0);
}

TEST(P2P, TagsSelectMessages) {
  MpiFixture f(2);
  int first = 0, second = 0;
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 10, 100);
      comm.send_value(1, 20, 200);
    } else {
      // Receive in reverse tag order: matching must be by tag, not arrival.
      second = comm.recv_value<int>(0, 20);
      first = comm.recv_value<int>(0, 10);
    }
  });
  EXPECT_EQ(first, 100);
  EXPECT_EQ(second, 200);
}

TEST(P2P, SameTagFifoOrder) {
  MpiFixture f(2);
  std::vector<int> got;
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 8; ++i) comm.send_value(1, 5, i);
    } else {
      for (int i = 0; i < 8; ++i) got.push_back(comm.recv_value<int>(0, 5));
    }
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(P2P, AnySourceMatchesEitherSender) {
  MpiFixture f(3);
  std::vector<int> got;
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 1) {
      comm.send_value(0, 1, 111);
    } else if (comm.rank() == 2) {
      comm.send_value(0, 1, 222);
    } else {
      support::Buffer buf;
      Status s1 = comm.recv(kAnySource, 1, buf);
      got.push_back(support::from_buffer<int>(buf));
      EXPECT_TRUE(s1.source == 1 || s1.source == 2);
      Status s2 = comm.recv(kAnySource, 1, buf);
      got.push_back(support::from_buffer<int>(buf));
      EXPECT_NE(s1.source, s2.source);
    }
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0] + got[1], 333);
}

TEST(P2P, AnyTagMatchesFirstArrival) {
  MpiFixture f(2);
  int got_tag = -99;
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 42, 1);
    } else {
      support::Buffer buf;
      Status st = comm.recv(0, kAnyTag, buf);
      got_tag = st.tag;
    }
  });
  EXPECT_EQ(got_tag, 42);
}

TEST(P2P, NonblockingOverlap) {
  MpiFixture f(2);
  double got = 0;
  sim::Time recv_done_at = 0, send_done_at = 0;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(1 << 16, 1.5);
      comm.isend(1, 9, std::as_bytes(std::span<const double>(big)));
      send_done_at = proc.now();  // eager: returns before delivery
    } else {
      Request r = comm.irecv(0, 9);
      proc.elapse(1.0);  // long compute while the message arrives
      Status st = comm.wait(r);
      EXPECT_FALSE(st.failed);
      got = support::typed_view<double>(
          std::span<const std::byte>(r.state().data))[0];
      recv_done_at = proc.now();
    }
  });
  EXPECT_DOUBLE_EQ(got, 1.5);
  // The receiver computed for 1 s; the wait must complete shortly after
  // (copy cost only), not add the full transfer again.
  EXPECT_LT(recv_done_at, 1.01);
  EXPECT_LT(send_done_at, 0.01);
}

TEST(P2P, WaitallCollectsMixedRequests) {
  MpiFixture f(3);
  std::array<int, 2> got{0, 0};
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(comm.irecv(1, 1));
      reqs.push_back(comm.irecv(2, 1));
      comm.waitall(reqs);
      got[0] = support::from_buffer<int>(reqs[0].state().data);
      got[1] = support::from_buffer<int>(reqs[1].state().data);
    } else {
      comm.send_value(0, 1, comm.rank() * 10);
    }
  });
  EXPECT_EQ(got[0], 10);
  EXPECT_EQ(got[1], 20);
}

TEST(P2P, TestPollsWithoutBlocking) {
  MpiFixture f(2);
  int polls_before_done = 0;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      proc.elapse(1.0);
      comm.send_value(1, 2, 5);
    } else {
      Request r = comm.irecv(0, 2);
      while (!comm.test(r)) {
        ++polls_before_done;
        proc.elapse(0.1);
      }
      EXPECT_EQ(support::from_buffer<int>(r.state().data), 5);
    }
  });
  EXPECT_GE(polls_before_done, 9);
  EXPECT_LE(polls_before_done, 12);
}

TEST(P2P, TransferTimeMatchesModel) {
  net::MachineModel m;
  m.net_latency = 1e-6;
  m.net_bandwidth = 1e9;
  m.send_overhead = 0.0;
  m.recv_overhead = 0.0;
  m.mem_bandwidth = 1e18;  // make copy cost negligible
  m.flop_rate = 1e18;
  MpiFixture f(8, /*cores_per_node=*/4, m);
  sim::Time arrival = 0;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> mb(1000000);
      comm.send(4, 1, mb);  // rank 4 is on node 1: inter-node
    } else if (comm.rank() == 4) {
      support::Buffer buf;
      comm.recv(0, 1, buf);
      arrival = proc.now();
    }
  });
  EXPECT_NEAR(arrival, 1e-3 + 1e-6, 1e-6);
}

TEST(P2P, RecvFromDeadPeerFails) {
  MpiFixture f(2);
  bool failed = false;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      proc.elapse(1.0);
      proc.world().crash(0);
      proc.elapse(10.0);  // killed during this delay
    } else {
      support::Buffer buf;
      Status st = comm.recv(0, 1, buf);  // never sent
      failed = st.failed;
    }
  });
  EXPECT_TRUE(failed);
}

TEST(P2P, RecvPostedAfterDeathFailsImmediately) {
  MpiFixture f(2);
  bool failed = false;
  sim::Time failed_at = 0;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      proc.world().crash(0);
      proc.elapse(10.0);
    } else {
      proc.elapse(2.0);  // well past the detection delay
      support::Buffer buf;
      Status st = comm.recv(0, 1, buf);
      failed = st.failed;
      failed_at = proc.now();
    }
  });
  EXPECT_TRUE(failed);
  EXPECT_NEAR(failed_at, 2.0, 1e-3);
}

TEST(P2P, MessageSentBeforeDeathIsStillConsumable) {
  // A crashed process's already-delivered messages remain in the unexpected
  // queue and can satisfy receives posted after its death — the paper's
  // "replicas that already got the update keep it" case.
  MpiFixture f(2);
  int got = 0;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 77);
      proc.world().crash(0);
      proc.elapse(10.0);
    } else {
      proc.elapse(2.0);  // death already announced
      got = comm.recv_value<int>(0, 1);
    }
  });
  EXPECT_EQ(got, 77);
}

TEST(P2P, MessagesToDeadProcessVanish) {
  MpiFixture f(2);
  bool done = false;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      proc.elapse(1.0);
      comm.send_value(1, 1, 5);  // rank 1 is already dead
      done = true;
    } else {
      proc.world().crash(1);
      proc.elapse(10.0);
    }
  });
  EXPECT_TRUE(done);
}

TEST(P2P, PurgeUnexpectedDropsStaleMessages) {
  MpiFixture f(2);
  std::size_t purged = 0;
  f.run([&](Proc& proc, Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 5);
      comm.send_value(1, 2, 6);
    } else {
      proc.elapse(1.0);  // let both messages arrive unexpected
      purged = proc.world().purge_unexpected(proc.world_rank(),
                                             comm.channel(), 0);
    }
  });
  EXPECT_EQ(purged, 2u);
}

TEST(P2P, SendToInvalidRankThrows) {
  MpiFixture f(2);
  EXPECT_THROW(f.run([&](Proc&, Comm& comm) {
                 if (comm.rank() == 0) comm.send_value(5, 1, 1);
               }),
               support::InvariantError);
}

TEST(P2P, SelfSendViaLoopback) {
  MpiFixture f(2);
  int got = 0;
  f.run([&](Proc&, Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(0, 1, 9);
      got = comm.recv_value<int>(0, 1);
    }
  });
  EXPECT_EQ(got, 9);
}

}  // namespace
}  // namespace repmpi::mpi
