// Stress and determinism tests for the MPI substrate: randomized traffic
// patterns verified against a sequential oracle, larger rank counts, and
// bit-reproducibility of whole simulations.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mpi_test_harness.hpp"
#include "support/rng.hpp"

namespace repmpi::mpi {
namespace {

using repmpi::testing::MpiFixture;

TEST(Stress, RandomizedPairwiseTrafficMatchesOracle) {
  // Every rank sends a deterministic pseudo-random number of messages to
  // every other rank; receivers must observe exactly the oracle's multiset,
  // in per-pair FIFO order.
  constexpr int kRanks = 6;
  support::Rng plan_rng(321);
  int plan[kRanks][kRanks] = {};
  for (int s = 0; s < kRanks; ++s)
    for (int d = 0; d < kRanks; ++d)
      if (s != d) plan[s][d] = static_cast<int>(plan_rng.next_below(5));

  MpiFixture f(kRanks);
  std::map<int, std::map<int, std::vector<int>>> got;  // dst -> src -> seq
  f.run([&](Proc&, Comm& comm) {
    const int me = comm.rank();
    // Post all receives first (wildcard-free), then send everything.
    std::vector<Request> reqs;
    std::vector<int> req_src;
    for (int s = 0; s < kRanks; ++s) {
      for (int k = 0; k < plan[s][me]; ++k) {
        reqs.push_back(comm.irecv(s, /*tag=*/7));
        req_src.push_back(s);
      }
    }
    for (int d = 0; d < kRanks; ++d) {
      for (int k = 0; k < plan[me][d]; ++k) {
        comm.send_value(d, 7, me * 1000 + k);
      }
    }
    comm.waitall(reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      got[me][req_src[i]].push_back(
          support::from_buffer<int>(reqs[i].state().data));
    }
  });
  for (int d = 0; d < kRanks; ++d) {
    for (int s = 0; s < kRanks; ++s) {
      if (s == d || plan[s][d] == 0) continue;
      const auto& seq = got[d][s];
      ASSERT_EQ(seq.size(), static_cast<std::size_t>(plan[s][d]));
      for (int k = 0; k < plan[s][d]; ++k) {
        EXPECT_EQ(seq[static_cast<std::size_t>(k)], s * 1000 + k)
            << "pair " << s << "->" << d;
      }
    }
  }
}

TEST(Stress, SixtyFourRanksAllreduce) {
  MpiFixture f(64, /*cores_per_node=*/4);
  std::vector<double> got(64, 0.0);
  f.run([&](Proc&, Comm& comm) {
    got[static_cast<std::size_t>(comm.rank())] = comm.allreduce_value(
        static_cast<double>(comm.rank()), ReduceOp::kSum);
  });
  for (double v : got) EXPECT_DOUBLE_EQ(v, 64.0 * 63.0 / 2.0);
}

TEST(Stress, WholeSimulationIsBitReproducible) {
  // Ten rounds of ring shifts with round-dependent offsets and payloads:
  // every rank sends and receives exactly one message per round, so the
  // pattern is matched; the fingerprint (accumulated values + finish time)
  // must be identical across runs.
  auto fingerprint = [] {
    MpiFixture f(8);
    double acc = 0;
    sim::Time finish = 0;
    f.run([&](Proc& proc, Comm& comm) {
      support::Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
      for (int round = 0; round < 10; ++round) {
        const int offset = 1 + round % 7;
        const int dst = (comm.rank() + offset) % 8;
        const int src = (comm.rank() - offset + 8) % 8;
        Request r = comm.irecv(src, round);
        comm.send_value(dst, round, rng.next_double());
        Status st = comm.wait(r);
        acc += support::from_buffer<double>(r.state().data) +
               st.source * 1e-3;
        proc.elapse(1e-6 * (comm.rank() + 1));
      }
      finish = std::max(finish, proc.now());
    });
    return std::make_pair(acc, finish);
  };
  const auto a = fingerprint();
  const auto b = fingerprint();
  EXPECT_EQ(a, b);
}

TEST(Stress, LargePayloadRoundTrip) {
  MpiFixture f(2);
  bool ok = false;
  f.run([&](Proc&, Comm& comm) {
    constexpr std::size_t kN = 1 << 20;  // 8 MiB of doubles
    if (comm.rank() == 0) {
      std::vector<double> big(kN);
      for (std::size_t i = 0; i < kN; ++i)
        big[i] = static_cast<double>(i % 1001) * 0.5;
      comm.send_span<double>(1, 1, big);
    } else {
      std::vector<double> in(kN, -1.0);
      comm.recv_span<double>(0, 1, std::span<double>(in));
      ok = in[999999] == static_cast<double>(999999 % 1001) * 0.5;
    }
  });
  EXPECT_TRUE(ok);
}

TEST(Stress, ManyCommunicatorsCoexist) {
  // Split the world repeatedly and use every derived communicator: channel
  // ids must never collide (messages stay within their comm).
  MpiFixture f(8);
  std::vector<int> ok(8, 0);
  f.run([&](Proc&, Comm& comm) {
    std::vector<Comm> comms;
    comms.push_back(comm.dup());
    comms.push_back(comm.split(comm.rank() % 2, comm.rank()));
    comms.push_back(comm.split(comm.rank() / 4, comm.rank()));
    comms.push_back(comms[1].dup());
    bool good = true;
    for (std::size_t c = 0; c < comms.size(); ++c) {
      Comm& sub = comms[c];
      // Ring exchange within each comm with identical tags everywhere:
      // only the channel can disambiguate.
      const int next = (sub.rank() + 1) % sub.size();
      const int prev = (sub.rank() - 1 + sub.size()) % sub.size();
      Request r = sub.irecv(prev, /*tag=*/1);
      sub.send_value(next, 1, static_cast<int>(c) * 100 + sub.rank());
      sub.wait(r);
      if (support::from_buffer<int>(r.state().data) !=
          static_cast<int>(c) * 100 + prev) {
        good = false;
      }
    }
    ok[static_cast<std::size_t>(comm.rank())] = good ? 1 : 0;
  });
  for (int o : ok) EXPECT_EQ(o, 1);
}

}  // namespace
}  // namespace repmpi::mpi
