// Supervisor tests: fork/exec'd /bin/sh workers exercising every failure
// class (crash / timeout / nonzero exit / corrupt output), bounded retry
// with the attempt counter exported to children, kill-on-timeout, and
// graceful degradation — one bad item never takes down the queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/supervisor.hpp"

namespace repmpi::support {
namespace {

WorkItem sh(const std::string& key, const std::string& script,
            double timeout_sec = 30.0) {
  WorkItem item;
  item.key = key;
  item.argv = {"/bin/sh", "-c", script};
  item.timeout_sec = timeout_sec;
  return item;
}

/// Fast-retry config so failure tests don't sleep through real backoff.
SupervisorConfig fast_cfg(int jobs = 1, int max_attempts = 1) {
  SupervisorConfig cfg;
  cfg.jobs = jobs;
  cfg.max_attempts = max_attempts;
  cfg.backoff_base_sec = 0.01;
  cfg.backoff_cap_sec = 0.05;
  return cfg;
}

TEST(Supervisor, CleanExitCapturesOutput) {
  Supervisor sup(fast_cfg());
  const auto results = sup.run({sh("ok", "echo hello")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].key, "ok");
  EXPECT_EQ(results[0].status, CellStatus::kOk);
  EXPECT_EQ(results[0].attempts, 1);
  EXPECT_EQ(results[0].code, 0);
  EXPECT_EQ(results[0].output, "hello\n");
}

TEST(Supervisor, NonzeroExitClassifiedWithCode) {
  Supervisor sup(fast_cfg(1, 2));
  const auto results = sup.run({sh("bad", "exit 7")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, CellStatus::kExit);
  EXPECT_EQ(results[0].code, 7);
  EXPECT_EQ(results[0].attempts, 2);  // retried, still failing
}

TEST(Supervisor, SignalDeathClassifiedAsCrash) {
  Supervisor sup(fast_cfg());
  const auto results = sup.run({sh("crash", "kill -9 $$")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, CellStatus::kCrash);
  EXPECT_EQ(results[0].code, 9);
}

TEST(Supervisor, ExecFailureIsNonzeroExit127) {
  WorkItem item;
  item.key = "noexec";
  item.argv = {"/nonexistent/definitely-not-a-binary"};
  Supervisor sup(fast_cfg());
  const auto results = sup.run({item});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, CellStatus::kExit);
  EXPECT_EQ(results[0].code, 127);
}

TEST(Supervisor, HungWorkerKilledAtDeadline) {
  const auto t0 = std::chrono::steady_clock::now();
  Supervisor sup(fast_cfg());
  const auto results = sup.run({sh("hang", "sleep 600", /*timeout_sec=*/0.3)});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, CellStatus::kTimeout);
  // The worker must actually have been killed, not waited out.
  EXPECT_LT(elapsed, 30.0);
}

TEST(Supervisor, TimeoutKillsTheWholeWorkerTree) {
  // The worker forks a grandchild that inherits the stdout pipe. The
  // deadline kill must take down the whole process group: an orphaned
  // grandchild would hold the pipe's write end open forever (and once
  // livelocked the reaper's drain loop).
  Supervisor sup(fast_cfg());
  const auto results =
      sup.run({sh("tree", "sleep 631 & wait", /*timeout_sec=*/0.3)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, CellStatus::kTimeout);

  std::FILE* ps = ::popen("ps -eo args 2>/dev/null", "r");
  ASSERT_NE(ps, nullptr);
  std::string procs;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), ps)) > 0) procs.append(buf, n);
  ::pclose(ps);
  EXPECT_EQ(procs.find("sleep 631"), std::string::npos)
      << "orphaned grandchild survived the timeout kill";
}

TEST(Supervisor, ValidateRejectionClassifiedAsCorrupt) {
  SupervisorConfig cfg = fast_cfg();
  cfg.validate = [](const WorkItem&, const std::string& output) {
    return output.find("MAGIC") != std::string::npos;
  };
  Supervisor sup(cfg);
  const auto results =
      sup.run({sh("good", "echo MAGIC"), sh("garbled", "echo mangled")});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, CellStatus::kOk);
  EXPECT_EQ(results[1].status, CellStatus::kCorrupt);
  EXPECT_EQ(results[1].code, 0);  // the exit itself was clean
}

TEST(Supervisor, RetrySucceedsUsingExportedAttemptCounter) {
  // Fails on attempt 1, succeeds on attempt 2 — proves both the retry path
  // and that REPMPI_SWEEP_ATTEMPT reaches the child.
  Supervisor sup(fast_cfg(1, 3));
  const auto results = sup.run({sh(
      "flaky", "if [ \"$REPMPI_SWEEP_ATTEMPT\" = 1 ]; then exit 1; fi; "
               "echo recovered")});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, CellStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_EQ(results[0].output, "recovered\n");
}

TEST(Supervisor, ExtraEnvReachesChild) {
  WorkItem item = sh("env", "echo \"$REPMPI_TEST_TOKEN\"");
  item.env = {"REPMPI_TEST_TOKEN=sentinel-42"};
  Supervisor sup(fast_cfg());
  const auto results = sup.run({item});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].output, "sentinel-42\n");
}

TEST(Supervisor, QueueDegradesGracefullyAroundFailures) {
  // A crasher, a hang, and a nonzero exit must not disturb the other items;
  // results come back in item order regardless of completion order.
  std::vector<WorkItem> items;
  items.push_back(sh("ok0", "echo a"));
  items.push_back(sh("crash", "kill -9 $$"));
  items.push_back(sh("ok1", "echo b"));
  items.push_back(sh("hang", "sleep 600", /*timeout_sec=*/0.3));
  items.push_back(sh("bad", "exit 3"));
  items.push_back(sh("ok2", "echo c"));
  Supervisor sup(fast_cfg(/*jobs=*/3, /*max_attempts=*/1));
  const auto results = sup.run(items);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].status, CellStatus::kOk);
  EXPECT_EQ(results[0].output, "a\n");
  EXPECT_EQ(results[1].status, CellStatus::kCrash);
  EXPECT_EQ(results[2].status, CellStatus::kOk);
  EXPECT_EQ(results[2].output, "b\n");
  EXPECT_EQ(results[3].status, CellStatus::kTimeout);
  EXPECT_EQ(results[4].status, CellStatus::kExit);
  EXPECT_EQ(results[4].code, 3);
  EXPECT_EQ(results[5].status, CellStatus::kOk);
  EXPECT_EQ(results[5].output, "c\n");
}

TEST(Supervisor, OnResultFiresOncePerItemWithTerminalStatus) {
  std::vector<std::string> seen;
  SupervisorConfig cfg = fast_cfg(2, 2);
  cfg.on_result = [&seen](const WorkItem& item, const WorkResult& r) {
    seen.push_back(item.key + ":" + to_string(r.status));
  };
  Supervisor sup(cfg);
  sup.run({sh("a", "echo x"), sh("b", "exit 1")});
  ASSERT_EQ(seen.size(), 2u);
  // Completion order varies; sort for a stable comparison.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen[0], "a:ok");
  EXPECT_EQ(seen[1], "b:exit");
}

TEST(Supervisor, BackoffDoublesFromBaseAndCaps) {
  SupervisorConfig cfg;
  cfg.backoff_base_sec = 0.5;
  cfg.backoff_cap_sec = 5.0;
  EXPECT_DOUBLE_EQ(Supervisor::backoff_sec(cfg, 1), 0.5);
  EXPECT_DOUBLE_EQ(Supervisor::backoff_sec(cfg, 2), 1.0);
  EXPECT_DOUBLE_EQ(Supervisor::backoff_sec(cfg, 3), 2.0);
  EXPECT_DOUBLE_EQ(Supervisor::backoff_sec(cfg, 4), 4.0);
  EXPECT_DOUBLE_EQ(Supervisor::backoff_sec(cfg, 5), 5.0);   // capped
  EXPECT_DOUBLE_EQ(Supervisor::backoff_sec(cfg, 12), 5.0);  // stays capped
}

TEST(Supervisor, RetryWaitsAtLeastTheBackoffDelay) {
  SupervisorConfig cfg = fast_cfg(1, 2);
  cfg.backoff_base_sec = 0.4;
  cfg.backoff_cap_sec = 1.0;
  const auto t0 = std::chrono::steady_clock::now();
  Supervisor sup(cfg);
  const auto results = sup.run({sh("flaky", "exit 1")});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_GE(elapsed, 0.4);  // the second attempt respected the backoff
}

TEST(Supervisor, DiagnosticLogMentionsRetryAndClass) {
  std::ostringstream log;
  SupervisorConfig cfg = fast_cfg(1, 2);
  cfg.log = &log;
  Supervisor sup(cfg);
  sup.run({sh("bad", "exit 5")});
  const std::string text = log.str();
  EXPECT_NE(text.find("retry"), std::string::npos);
  EXPECT_NE(text.find("exit"), std::string::npos);
  EXPECT_NE(text.find("bad"), std::string::npos);
}

TEST(Supervisor, JitteredBackoffIsReproducibleForAFixedSeed) {
  SupervisorConfig cfg;
  cfg.backoff_base_sec = 0.5;
  cfg.backoff_cap_sec = 5.0;
  cfg.backoff_jitter_seed = 0x1234abcd;
  for (int retry = 1; retry <= 12; ++retry) {
    const double a = Supervisor::backoff_sec(cfg, retry, "hpccg.l2.d2.none");
    const double b = Supervisor::backoff_sec(cfg, retry, "hpccg.l2.d2.none");
    EXPECT_DOUBLE_EQ(a, b) << "retry " << retry;  // pure function of inputs
  }
}

TEST(Supervisor, JitteredBackoffStaysWithinHalfToFullExactDelay) {
  SupervisorConfig cfg;
  cfg.backoff_base_sec = 0.5;
  cfg.backoff_cap_sec = 5.0;
  cfg.backoff_jitter_seed = 7;
  for (int retry = 1; retry <= 12; ++retry) {
    const double exact = Supervisor::backoff_sec(cfg, retry);
    for (const char* key : {"a", "b", "hpccg.l4.d3.late_crash"}) {
      const double jittered = Supervisor::backoff_sec(cfg, retry, key);
      EXPECT_GE(jittered, 0.5 * exact) << "retry " << retry << " key " << key;
      EXPECT_LT(jittered, exact) << "retry " << retry << " key " << key;
    }
  }
}

TEST(Supervisor, JitterDecorrelatesSiblingKeysAndZeroSeedIsExact) {
  SupervisorConfig cfg;
  cfg.backoff_base_sec = 0.5;
  cfg.backoff_cap_sec = 5.0;
  // Seed 0 keeps the exact exponential delays (what existing configs get).
  EXPECT_DOUBLE_EQ(Supervisor::backoff_sec(cfg, 3, "any-key"),
                   Supervisor::backoff_sec(cfg, 3));
  // With a seed, two cells failing at the same instant retry at different
  // times — the whole point of the jitter.
  cfg.backoff_jitter_seed = 42;
  EXPECT_NE(Supervisor::backoff_sec(cfg, 3, "hpccg.l2.d2.none"),
            Supervisor::backoff_sec(cfg, 3, "hpccg.l4.d2.none"));
  // Different seeds give a different (still deterministic) schedule.
  SupervisorConfig other = cfg;
  other.backoff_jitter_seed = 43;
  EXPECT_NE(Supervisor::backoff_sec(cfg, 3, "hpccg.l2.d2.none"),
            Supervisor::backoff_sec(other, 3, "hpccg.l2.d2.none"));
}

TEST(Supervisor, IncrementalEnqueueStepDeliversResults) {
  std::vector<std::string> seen;
  SupervisorConfig cfg = fast_cfg(2, 2);
  cfg.on_result = [&seen](const WorkItem& item, const WorkResult& r) {
    seen.push_back(item.key + ":" + to_string(r.status));
  };
  Supervisor sup(cfg);
  EXPECT_EQ(sup.active(), 0u);
  sup.enqueue(sh("a", "echo x"));
  sup.enqueue(sh("b", "exit 1"));
  EXPECT_EQ(sup.active(), 2u);
  // Items enqueued later join a live engine mid-flight. (a/b may already
  // have been reaped by the step above — fast workers can finish inside
  // one step — so only c is guaranteed still active.)
  sup.step(10);
  sup.enqueue(sh("c", "echo y"));
  EXPECT_GE(sup.active(), 1u);
  EXPECT_LE(sup.active(), 3u);
  for (int i = 0; i < 3000 && sup.active() > 0; ++i) sup.step(20);
  EXPECT_EQ(sup.active(), 0u);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "a:ok");
  EXPECT_EQ(seen[1], "b:exit");
  EXPECT_EQ(seen[2], "c:ok");
}

TEST(Supervisor, HoldFirstAttemptsParksFreshWorkButFinishesRetries) {
  // The graceful-drain switch: a retrying item (already started) completes,
  // a never-started item stays parked — exactly the split the daemon's
  // SIGTERM drain needs.
  std::vector<std::string> seen;
  SupervisorConfig cfg = fast_cfg(1, 2);
  cfg.on_result = [&seen](const WorkItem& item, const WorkResult&) {
    seen.push_back(item.key);
  };
  Supervisor sup(cfg);
  sup.enqueue(sh("retrier", "exit 1"));
  // Step until the first attempt has been spawned: from then on the item
  // counts as in-flight and a hold no longer applies to it.
  for (int i = 0; i < 3000 && sup.queued_fresh() > 0; ++i) sup.step(20);
  sup.enqueue(sh("parked", "echo never"));
  sup.hold_first_attempts(true);
  for (int i = 0; i < 3000 && sup.in_flight() > 0; ++i) sup.step(20);
  EXPECT_EQ(seen, std::vector<std::string>{"retrier"});
  EXPECT_EQ(sup.active(), 1u);        // parked item still owed
  EXPECT_EQ(sup.queued_fresh(), 1u);  // ...and never spawned
  // Releasing the hold lets the parked item run (same-process "restart").
  sup.hold_first_attempts(false);
  for (int i = 0; i < 3000 && sup.active() > 0; ++i) sup.step(20);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], "parked");
}

TEST(Supervisor, InvalidConfigRejected) {
  SupervisorConfig cfg;
  cfg.jobs = 0;
  EXPECT_THROW(Supervisor{cfg}, UsageError);
  cfg.jobs = 1;
  cfg.max_attempts = 0;
  EXPECT_THROW(Supervisor{cfg}, UsageError);
}

}  // namespace
}  // namespace repmpi::support
