// Unit tests for the support module: buffers, RNG determinism, statistics,
// options parsing, table formatting.

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "support/buffer.hpp"
#include "support/error.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace repmpi::support {
namespace {

TEST(Buffer, ScalarRoundTrip) {
  const double x = 3.14159;
  Buffer b = make_buffer(x);
  EXPECT_EQ(b.size(), sizeof(double));
  EXPECT_DOUBLE_EQ(from_buffer<double>(b), x);
}

TEST(Buffer, SpanRoundTrip) {
  const std::array<int, 4> src{1, 2, 3, 4};
  Buffer b = make_buffer(std::span<const int>(src));
  std::array<int, 4> dst{};
  EXPECT_EQ(copy_into<int>(b, dst), 4u);
  EXPECT_EQ(dst, src);
}

TEST(Buffer, TypedViewAliasesBytes) {
  const std::array<double, 3> src{1.5, -2.5, 0.0};
  Buffer b = make_buffer(std::span<const double>(src));
  auto view = typed_view<double>(std::span<const std::byte>(b));
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[1], -2.5);
}

TEST(Buffer, CopyIntoTruncatesToSmallerDst) {
  const std::array<int, 4> src{1, 2, 3, 4};
  Buffer b = make_buffer(std::span<const int>(src));
  std::array<int, 2> dst{};
  EXPECT_EQ(copy_into<int>(b, dst), 2u);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[1], 2);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng base(7);
  Rng s1 = base.fork(1);
  Rng s2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (s1.next_u64() == s2.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(123);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Stats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--np=16", "--verbose", "--ratio=0.5", "pos"};
  Options o(5, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("np", 0), 16);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(o.get_double("ratio", 0.0), 0.5);
  EXPECT_EQ(o.get("missing", "def"), "def");
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "pos");
}

TEST(Table, FormatsAlignedCells) {
  Table t({"name", "value"});
  t.add_row({"x", Table::fmt(1.5, 1)});
  t.add_row({"longer", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Check, ThrowsInvariantError) {
  EXPECT_THROW(REPMPI_CHECK_MSG(1 == 2, "impossible"), InvariantError);
  EXPECT_NO_THROW(REPMPI_CHECK(1 == 1));
}

}  // namespace
}  // namespace repmpi::support
