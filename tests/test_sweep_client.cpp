// Sweep-service client tests: the framed cmd/ack wire protocol (CRC'd
// 32-byte headers, corrupt-frame rejection), the deterministic jittered
// retry backoff, and the client's failure semantics against a live
// in-process Unix-socket server — NACKs return immediately, connection
// errors retry, a daemon restart mid-conversation is survived.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "support/sweep_client.hpp"

namespace repmpi::support {
namespace {

// --- Wire format ------------------------------------------------------------

TEST(Wire, EncodeDecodeRoundtrip) {
  wire::Frame f;
  f.type = wire::kSubmit;
  f.request_id = 0xdeadbeef12345678ULL;
  f.payload = "hpccg.l2.d2.none";
  const std::string bytes = wire::encode_frame(f);
  EXPECT_EQ(bytes.size(), wire::kHeaderSize + f.payload.size());

  wire::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_frame(bytes.data(), bytes.size(), &out, &consumed),
            wire::DecodeStatus::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.type, wire::kSubmit);
  EXPECT_EQ(out.request_id, f.request_id);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(Wire, NackStatusCodeRoundtrips) {
  wire::Frame f;
  f.type = wire::kNack;
  f.status = wire::kNackBusy;
  f.request_id = 7;
  const std::string bytes = wire::encode_frame(f);
  wire::Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_frame(bytes.data(), bytes.size(), &out, &consumed),
            wire::DecodeStatus::kFrame);
  EXPECT_EQ(out.status, wire::kNackBusy);
}

TEST(Wire, PartialFrameNeedsMore) {
  wire::Frame f;
  f.type = wire::kHello;
  f.payload = "0123456789";
  const std::string bytes = wire::encode_frame(f);
  wire::Frame out;
  std::size_t consumed = 0;
  // Truncated anywhere — mid-header or mid-payload — is kNeedMore, never
  // a bogus decode.
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_EQ(wire::decode_frame(bytes.data(), len, &out, &consumed),
              wire::DecodeStatus::kNeedMore)
        << "prefix length " << len;
}

TEST(Wire, AnySingleByteFlipIsCorrupt) {
  wire::Frame f;
  f.type = wire::kQuery;
  f.request_id = 42;
  f.payload = "hpccg.l4.d3.late_crash";
  const std::string clean = wire::encode_frame(f);
  wire::Frame out;
  std::size_t consumed = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x20);
    const auto status =
        wire::decode_frame(bytes.data(), bytes.size(), &out, &consumed);
    // A flipped length field can also make the frame look incomplete;
    // what must never happen is a successful decode of tampered bytes.
    EXPECT_NE(status, wire::DecodeStatus::kFrame) << "flipped byte " << i;
  }
}

TEST(Wire, OversizedPayloadClaimIsCorrupt) {
  wire::Frame f;
  f.type = wire::kHello;
  std::string bytes = wire::encode_frame(f);
  // Forge a header claiming a payload beyond the sanity cap; the CRC check
  // already rejects it, which is the point — no attacker-controlled
  // allocations from a length field alone.
  std::uint32_t huge = wire::kMaxPayload + 1;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));  // payload_len field
  wire::Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_frame(bytes.data(), bytes.size(), &out, &consumed),
            wire::DecodeStatus::kCorrupt);
}

TEST(Wire, NackNamesAreDistinct) {
  EXPECT_STREQ(wire::nack_name(wire::kNackBusy), "busy");
  EXPECT_STREQ(wire::nack_name(wire::kNackClientCap), "client-cap");
  EXPECT_STREQ(wire::nack_name(wire::kNackDraining), "draining");
  EXPECT_STREQ(wire::nack_name(wire::kNackBadRequest), "bad-request");
  EXPECT_STREQ(wire::nack_name(wire::kNackInternal), "internal");
}

// --- Retry backoff ----------------------------------------------------------

TEST(SweepClientBackoff, JitteredDelayIsReproducibleAndBounded) {
  SweepClientConfig cfg;
  cfg.socket_path = "-";
  cfg.backoff_base_sec = 0.05;
  cfg.backoff_cap_sec = 1.0;
  cfg.jitter_seed = 0xfeedface;
  for (int attempt = 2; attempt <= 10; ++attempt) {
    const double a = SweepClient::retry_delay_sec(cfg, attempt);
    const double b = SweepClient::retry_delay_sec(cfg, attempt);
    EXPECT_DOUBLE_EQ(a, b) << "attempt " << attempt;  // deterministic
    SweepClientConfig exact = cfg;
    exact.jitter_seed = 0;
    const double e = SweepClient::retry_delay_sec(exact, attempt);
    EXPECT_GE(a, 0.5 * e) << "attempt " << attempt;
    EXPECT_LT(a, e) << "attempt " << attempt;
    EXPECT_LE(e, cfg.backoff_cap_sec);
  }
  // Zero seed: the exact exponential, doubling from base and capping.
  SweepClientConfig exact = cfg;
  exact.jitter_seed = 0;
  EXPECT_DOUBLE_EQ(SweepClient::retry_delay_sec(exact, 2), 0.05);
  EXPECT_DOUBLE_EQ(SweepClient::retry_delay_sec(exact, 3), 0.1);
  EXPECT_DOUBLE_EQ(SweepClient::retry_delay_sec(exact, 4), 0.2);
  EXPECT_DOUBLE_EQ(SweepClient::retry_delay_sec(exact, 10), 1.0);  // capped
}

// --- Client against a live in-process server --------------------------------

std::string temp_socket_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "repmpi_swc_" + name;
  std::remove(path.c_str());
  return path;
}

/// Minimal one-shot UDS server: accepts connections and answers each
/// decoded command frame via `responder` until told to stop.
class MiniServer {
 public:
  using Responder = std::function<std::string(const wire::Frame&)>;

  MiniServer(const std::string& path, Responder responder)
      : responder_(std::move(responder)) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    thread_ = std::thread([this] { serve(); });
  }

  ~MiniServer() {
    // Shutdown makes the blocking accept() return so the thread exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }

 private:
  void serve() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::string inbuf;
      char buf[4096];
      for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        inbuf.append(buf, static_cast<std::size_t>(n));
        wire::Frame req;
        std::size_t consumed = 0;
        bool closed = false;
        while (wire::decode_frame(inbuf.data(), inbuf.size(), &req,
                                  &consumed) == wire::DecodeStatus::kFrame) {
          inbuf.erase(0, consumed);
          const std::string reply = responder_(req);
          if (reply.empty()) {  // responder says: hang up mid-exchange
            closed = true;
            break;
          }
          std::size_t sent = 0;
          while (sent < reply.size()) {
            const ssize_t w =
                ::send(fd, reply.data() + sent, reply.size() - sent,
                       MSG_NOSIGNAL);
            if (w <= 0) break;
            sent += static_cast<std::size_t>(w);
          }
        }
        if (closed) break;
      }
      ::close(fd);
    }
  }

  Responder responder_;
  int listen_fd_ = -1;
  std::thread thread_;
};

SweepClientConfig fast_cfg(const std::string& socket_path) {
  SweepClientConfig cfg;
  cfg.socket_path = socket_path;
  cfg.op_timeout_sec = 5.0;
  cfg.max_tries = 3;
  cfg.backoff_base_sec = 0.01;
  cfg.backoff_cap_sec = 0.05;
  return cfg;
}

TEST(SweepClient, HelloRoundtripEchoesRequestId) {
  const std::string path = temp_socket_path("hello");
  MiniServer server(path, [](const wire::Frame& req) {
    EXPECT_EQ(req.type, wire::kHello);
    wire::Frame resp;
    resp.type = wire::kAck;
    resp.request_id = req.request_id;  // the match the client verifies
    resp.payload = "banner";
    return wire::encode_frame(resp);
  });
  SweepClient client(fast_cfg(path));
  const RpcReply reply = client.hello();
  EXPECT_EQ(reply.status, RpcStatus::kOk);
  EXPECT_EQ(reply.payload, "banner");
  // Consecutive calls over one connection keep working.
  EXPECT_EQ(client.hello().status, RpcStatus::kOk);
}

TEST(SweepClient, NackReturnsImmediatelyWithoutRetrying) {
  const std::string path = temp_socket_path("nack");
  std::atomic<int> calls{0};
  MiniServer server(path, [&calls](const wire::Frame& req) {
    ++calls;
    wire::Frame resp;
    resp.type = wire::kNack;
    resp.status = wire::kNackBusy;
    resp.request_id = req.request_id;
    resp.payload = "queue depth reached";
    return wire::encode_frame(resp);
  });
  SweepClient client(fast_cfg(path));
  const auto t0 = std::chrono::steady_clock::now();
  const RpcReply reply = client.submit("hpccg.l2.d2.none");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(reply.status, RpcStatus::kNack);
  EXPECT_EQ(reply.nack_code, wire::kNackBusy);
  EXPECT_EQ(reply.payload, "queue depth reached");
  EXPECT_EQ(calls.load(), 1);  // backpressure is answered, never retried
  EXPECT_LT(elapsed, 2.0);     // and the answer is bounded-time
}

TEST(SweepClient, MismatchedRequestIdIsProtocolError) {
  const std::string path = temp_socket_path("badid");
  MiniServer server(path, [](const wire::Frame& req) {
    wire::Frame resp;
    resp.type = wire::kAck;
    resp.request_id = req.request_id + 1;  // wrong conversation
    return wire::encode_frame(resp);
  });
  SweepClient client(fast_cfg(path));
  EXPECT_EQ(client.status().status, RpcStatus::kProtocolError);
}

TEST(SweepClient, CorruptResponseFrameIsProtocolError) {
  const std::string path = temp_socket_path("corrupt");
  MiniServer server(path, [](const wire::Frame& req) {
    wire::Frame resp;
    resp.type = wire::kAck;
    resp.request_id = req.request_id;
    std::string bytes = wire::encode_frame(resp);
    bytes[5] = static_cast<char>(bytes[5] ^ 0xff);  // break the header CRC
    return bytes;
  });
  SweepClient client(fast_cfg(path));
  EXPECT_EQ(client.hello().status, RpcStatus::kProtocolError);
}

TEST(SweepClient, NoDaemonIsConnErrorAfterBoundedRetries) {
  SweepClientConfig cfg = fast_cfg(temp_socket_path("nobody"));
  cfg.max_tries = 2;
  SweepClient client(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(client.hello().status, RpcStatus::kConnError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 3.0);  // bounded: tries * (connect fail + backoff)
}

TEST(SweepClient, ReconnectsAfterServerDropsTheConnection) {
  // The server hangs up instead of answering the first frame it sees —
  // the shape of a daemon being killed mid-exchange. The retry must
  // reconnect and complete against the revived service.
  const std::string path = temp_socket_path("redial");
  std::atomic<int> calls{0};
  MiniServer server(path, [&calls](const wire::Frame& req) -> std::string {
    if (++calls == 1) return "";  // hang up mid-exchange
    wire::Frame resp;
    resp.type = wire::kAck;
    resp.request_id = req.request_id;
    resp.payload = "recovered";
    return wire::encode_frame(resp);
  });
  SweepClient client(fast_cfg(path));
  const RpcReply reply = client.status();
  EXPECT_EQ(reply.status, RpcStatus::kOk);
  EXPECT_EQ(reply.payload, "recovered");
  EXPECT_EQ(calls.load(), 2);
}

}  // namespace
}  // namespace repmpi::support
