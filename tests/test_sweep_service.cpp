// End-to-end tests of the sweep service: the real repmpi_sweepd and
// repmpi_sweepctl binaries (paths injected by CMake) driven over a spool
// directory in the test temp dir. Covers the service lifecycle (ping /
// submit / query / wait / drain), durable-queue crash recovery (SIGKILL
// the daemon mid-service, restart, resumed cells complete bit-identically
// to a one-shot sweep), and admission control (over-capacity submits get
// a bounded-time NACK with the distinct exit code, never a hang).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifndef REPMPI_SWEEP_BIN
#error "REPMPI_SWEEP_BIN must be defined by the build"
#endif
#ifndef REPMPI_SWEEPD_BIN
#error "REPMPI_SWEEPD_BIN must be defined by the build"
#endif
#ifndef REPMPI_SWEEPCTL_BIN
#error "REPMPI_SWEEPCTL_BIN must be defined by the build"
#endif

namespace {

struct CmdResult {
  int code = -1;
  std::string output;
};

/// Runs a shell command, capturing stdout only (stderr passes through to
/// the test log) — dumps must be byte-comparable without stderr noise.
CmdResult run_cmd(const std::string& cmd) {
  CmdResult result;
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
    result.output.append(buf, n);
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) result.code = WEXITSTATUS(status);
  if (WIFSIGNALED(status)) result.code = 128 + WTERMSIG(status);
  return result;
}

/// Identical cell parameters everywhere so dumps are byte-comparable
/// between the daemon-served sweep and the one-shot reference sweep.
const char kCellParams[] = " --jobs=2 --nx=6 --iters=2";

std::string ctl(const std::string& spool, const std::string& rest) {
  return std::string(REPMPI_SWEEPCTL_BIN) + " " + rest + " --spool=" + spool;
}

/// A running daemon instance: fork/exec'd with optional chaos env, killed
/// and reaped on destruction if the test did not already collect it.
class Daemon {
 public:
  Daemon(const std::string& spool, const std::string& extra_args = "",
         const std::string& chaos_env = "") {
    pid_ = ::fork();
    if (pid_ == 0) {
      // `exec` so pid_ IS the daemon (signals and wait status are its own,
      // not a wrapping shell's). chaos_env is space-separated K=V pairs.
      const std::string cmd =
          (chaos_env.empty() ? "" : chaos_env + " ") + "exec " +
          REPMPI_SWEEPD_BIN + " --spool=" + spool + kCellParams +
          " --sweep-bin=" + REPMPI_SWEEP_BIN +
          (extra_args.empty() ? "" : " " + extra_args) + " > " + spool +
          "/daemon.log 2>&1";
      ::execlp("/bin/sh", "sh", "-c", cmd.c_str(), nullptr);
      ::_exit(127);
    }
  }

  ~Daemon() {
    if (pid_ > 0 && !reaped_) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  /// Waits (bounded) for the daemon to exit; returns the wait status via
  /// the shell wrapper: 0 for a clean daemon exit.
  int wait_exit(double timeout_sec = 60.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_sec);
    int status = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      const pid_t r = ::waitpid(pid_, &status, WNOHANG);
      if (r == pid_) {
        reaped_ = true;
        return WIFEXITED(status) ? WEXITSTATUS(status)
                                 : 128 + WTERMSIG(status);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return -1;  // still running
  }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
};

/// Polls ping until the daemon answers (it may still be binding).
void wait_ready(const std::string& spool) {
  for (int i = 0; i < 200; ++i) {
    if (run_cmd(ctl(spool, "ping")).code == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FAIL() << "daemon on " << spool << " never answered ping";
}

std::string fresh_spool(const std::string& name) {
  const std::string spool = ::testing::TempDir() + "repmpi_spool_" + name;
  run_cmd("rm -rf " + spool);
  ::mkdir(spool.c_str(), 0777);
  return spool;
}

std::string dump_results(const std::string& spool) {
  const CmdResult r =
      run_cmd(ctl(spool, "dump " + spool + "/results.bin"));
  EXPECT_EQ(r.code, 0);
  return r.output;
}

class SweepService : public ::testing::Test {
 protected:
  // One clean one-shot reference sweep: the byte-identity baseline every
  // daemon-served dump is compared against, plus the replay trace.
  static void SetUpTestSuite() {
    const std::string log = ::testing::TempDir() + "repmpi_svc_ref.bin";
    std::remove(log.c_str());
    std::remove((log + ".blob").c_str());
    ASSERT_EQ(run_cmd(std::string(REPMPI_SWEEP_BIN) + " --log=" + log +
                      kCellParams + " > /dev/null")
                  .code,
              0);
    const CmdResult d = run_cmd(std::string(REPMPI_SWEEP_BIN) +
                                " --dump --log=" + log);
    ASSERT_EQ(d.code, 0);
    clean_dump_ = new std::string(d.output);

    trace_path_ = new std::string(::testing::TempDir() + "repmpi_svc_trace");
    ASSERT_EQ(run_cmd(std::string(REPMPI_SWEEP_BIN) + " --list-cells > " +
                      *trace_path_)
                  .code,
              0);
  }
  static void TearDownTestSuite() {
    delete clean_dump_;
    delete trace_path_;
    clean_dump_ = nullptr;
    trace_path_ = nullptr;
  }
  static const std::string* clean_dump_;
  static const std::string* trace_path_;
};
const std::string* SweepService::clean_dump_ = nullptr;
const std::string* SweepService::trace_path_ = nullptr;

TEST_F(SweepService, LifecycleSubmitQueryWaitDrain) {
  const std::string spool = fresh_spool("lifecycle");
  Daemon daemon(spool);
  wait_ready(spool);

  CmdResult r = run_cmd(ctl(spool, "ping"));
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.output.find("repmpi_sweepd pid="), std::string::npos);

  // Unknown cell: queried before any submit.
  r = run_cmd(ctl(spool, "query-cell hpccg.l2.d2.none"));
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.output.find("unknown"), std::string::npos);

  // Submit two cells, one of them twice back-to-back: the duplicate of a
  // still-pending cell coalesces onto the scheduled run.
  r = run_cmd(ctl(spool, "submit hpccg.l2.d2.none hpccg.l2.d2.none "
                         "hpccg.l2.d1.none"));
  EXPECT_EQ(r.code, 0) << r.output;
  EXPECT_NE(r.output.find("hpccg.l2.d2.none: queued"), std::string::npos);
  EXPECT_NE(r.output.find("hpccg.l2.d2.none: coalesced"), std::string::npos)
      << r.output;

  // A malformed key is refused outright (NACK exit code, bad-request).
  r = run_cmd(ctl(spool, "submit not.a.cell.key"));
  EXPECT_EQ(r.code, 6);

  r = run_cmd(ctl(spool, "wait --timeout-sec=120"));
  EXPECT_EQ(r.code, 0) << r.output;

  r = run_cmd(ctl(spool, "query-cell hpccg.l2.d2.none"));
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.output.find("done status=ok"), std::string::npos) << r.output;

  // status reflects the two completed cells.
  r = run_cmd(ctl(spool, "status"));
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.output.find("active=0"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("keys=2"), std::string::npos) << r.output;

  // Drain: the daemon acks, stops admitting, and exits cleanly.
  r = run_cmd(ctl(spool, "drain"));
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.output.find("draining"), std::string::npos);
  EXPECT_EQ(daemon.wait_exit(), 0);

  // Post-drain: its results log verifies clean.
  EXPECT_EQ(run_cmd(std::string(REPMPI_SWEEP_BIN) + " --verify-log=" +
                    spool + "/results.bin > /dev/null")
                .code,
            0);
}

TEST_F(SweepService, FullGridReplayMatchesOneShotSweepByteForByte) {
  const std::string spool = fresh_spool("replay");
  Daemon daemon(spool);
  wait_ready(spool);

  CmdResult r = run_cmd(ctl(spool, "replay " + *trace_path_));
  EXPECT_EQ(r.code, 0) << r.output;
  EXPECT_NE(r.output.find("14/14 cell(s) accepted"), std::string::npos)
      << r.output;
  EXPECT_EQ(run_cmd(ctl(spool, "wait --timeout-sec=300")).code, 0);
  EXPECT_EQ(run_cmd(ctl(spool, "drain")).code, 0);
  EXPECT_EQ(daemon.wait_exit(), 0);

  // The acceptance bar: a daemon-served grid dumps byte-identically to
  // the one-shot sweep of the same grid.
  EXPECT_EQ(dump_results(spool), *clean_dump_);
}

TEST_F(SweepService, SigkillMidServiceThenRestartResumesAndStaysIdentical) {
  // The ISSUE's headline scenario: SIGKILL the daemon mid-service (via
  // the chaos knob, after its 4th durable result), restart it, and let
  // the durable queue resume the accepted-but-unfinished cells — no
  // resubmission, byte-identical final dump.
  // --jobs=1 plus a 2s stall on the first cell: no result can land until
  // the stall ends, so the replay always finishes submitting all 14 cells
  // before the 4th-result kill fires. (The stall is a pre-run sleep; the
  // cell's metrics are virtual-time and unaffected.) --client-cap=64 lets
  // the replay connection hold the whole grid in flight at once.
  const std::string spool = fresh_spool("killresume");
  {
    Daemon doomed(spool, "--jobs=1 --client-cap=64",
                  "REPMPI_FAULT_DAEMON_KILL_AFTER=4 "
                  "REPMPI_FAULT_STALL_CELL=hpccg.l2.d1.none "
                  "REPMPI_FAULT_STALL_SEC=2");
    wait_ready(spool);
    const CmdResult r = run_cmd(ctl(spool, "replay " + *trace_path_));
    EXPECT_EQ(r.code, 0) << r.output;  // all 14 accepted before any kill
    EXPECT_EQ(doomed.wait_exit(120.0), 128 + SIGKILL);
  }

  // The fsck must pass on what the dead daemon left behind (every append
  // is durable; the kill lands between appends).
  EXPECT_EQ(run_cmd(std::string(REPMPI_SWEEP_BIN) + " --verify-log=" +
                    spool + "/results.bin > /dev/null")
                .code,
            0);

  Daemon revived(spool);
  wait_ready(spool);
  // No resubmission: the queue log alone drives the resume — proven below
  // by the complete, byte-identical dump.
  EXPECT_EQ(run_cmd(ctl(spool, "wait --timeout-sec=300")).code, 0);
  EXPECT_EQ(run_cmd(ctl(spool, "drain")).code, 0);
  EXPECT_EQ(revived.wait_exit(), 0);

  EXPECT_EQ(dump_results(spool), *clean_dump_);
  // Exactly 14 records: resumed cells ran once, completed cells were not
  // re-run (their queue records were satisfied by epoch comparison).
  const CmdResult stats =
      run_cmd(ctl(spool, "stats " + spool + "/results.bin"));
  EXPECT_EQ(stats.code, 0);
  EXPECT_NE(stats.output.find("records=14"), std::string::npos)
      << stats.output;
  EXPECT_NE(stats.output.find("ok=14"), std::string::npos) << stats.output;
}

TEST_F(SweepService, OverCapacityGetsBoundedTimeNackNotAHang) {
  // Queue depth 2, with a worker stall keeping slots occupied: the third
  // distinct submit must be answered NACK busy (exit 6) within bounded
  // time — the explicit-backpressure acceptance criterion.
  // --jobs=1: the stalled cell occupies the only slot, so the second cell
  // stays queued and depth 2 is deterministically full for the third.
  const std::string spool = fresh_spool("busynack");
  Daemon daemon(spool, "--jobs=1 --queue-depth=2 --timeout-sec=30",
                "REPMPI_FAULT_STALL_CELL=hpccg.l2.d1.none "
                "REPMPI_FAULT_STALL_SEC=60");
  wait_ready(spool);

  EXPECT_EQ(run_cmd(ctl(spool, "submit hpccg.l2.d1.none")).code, 0);
  EXPECT_EQ(run_cmd(ctl(spool, "submit hpccg.l4.d1.none")).code, 0);
  const auto t0 = std::chrono::steady_clock::now();
  const CmdResult r = run_cmd(ctl(spool, "submit hpccg.l2.d2.none"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(r.code, 6);
  EXPECT_LT(elapsed, 5.0) << "backpressure took " << elapsed
                          << "s — that is a hang, not an answer";
}

TEST_F(SweepService, PerClientInFlightCapIsEnforced) {
  const std::string spool = fresh_spool("clientcap");
  Daemon daemon(spool, "--client-cap=1 --timeout-sec=30",
                "REPMPI_FAULT_STALL_CELL=hpccg.l2.d1.none "
                "REPMPI_FAULT_STALL_SEC=60");
  wait_ready(spool);
  // One connection, two distinct cells: the second submit exceeds the
  // client's in-flight cap while the first (stalled) is still running.
  const CmdResult r =
      run_cmd(ctl(spool, "submit hpccg.l2.d1.none hpccg.l4.d1.none"));
  EXPECT_EQ(r.code, 6) << r.output;
  // A NEW connection still has budget: the cap is per client, not global.
  EXPECT_EQ(run_cmd(ctl(spool, "submit hpccg.l4.d1.none")).code, 0);
}

TEST_F(SweepService, DrainParksQueuedCellsForTheNextIncarnation) {
  // Drain with a deep backlog on one slot: never-started cells stay
  // parked (durable), and the restarted daemon picks them up without any
  // resubmission.
  const std::string spool = fresh_spool("drainpark");
  {
    Daemon daemon(spool, "--jobs=1");
    wait_ready(spool);
    ASSERT_EQ(run_cmd(ctl(spool, "replay " + *trace_path_)).code, 0);
    ASSERT_EQ(run_cmd(ctl(spool, "drain")).code, 0);
    EXPECT_EQ(daemon.wait_exit(120.0), 0);
  }
  Daemon revived(spool);
  wait_ready(spool);
  EXPECT_EQ(run_cmd(ctl(spool, "wait --timeout-sec=300")).code, 0);
  EXPECT_EQ(run_cmd(ctl(spool, "drain")).code, 0);
  EXPECT_EQ(revived.wait_exit(), 0);
  EXPECT_EQ(dump_results(spool), *clean_dump_);
}

}  // namespace
