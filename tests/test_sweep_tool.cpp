// End-to-end tests of the repmpi_sweep binary: clean sweep, SIGKILL
// mid-sweep + --resume bit-identity, worker crash/corrupt retry, stall →
// timeout with graceful degradation, and torn-log recovery. These drive the
// real executable (path injected by CMake as REPMPI_SWEEP_BIN) through the
// REPMPI_FAULT_* chaos knobs — the same scenarios the CI chaos job runs.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

#ifndef REPMPI_SWEEP_BIN
#error "REPMPI_SWEEP_BIN must be defined by the build (path to repmpi_sweep)"
#endif

namespace {

struct CmdResult {
  int code = -1;       // exit status; 128+sig when signal-killed
  std::string output;  // combined stdout+stderr
};

/// Runs a shell command, capturing combined output and the exit status.
CmdResult run_cmd(const std::string& cmd) {
  CmdResult result;
  std::FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
    result.output.append(buf, n);
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    result.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.code = 128 + WTERMSIG(status);
  }
  return result;
}

/// Small problem so the full 14-cell grid stays test-speed; identical params
/// across every test so dumps are byte-comparable.
const char kParams[] = " --jobs=2 --nx=6 --iters=2";

std::string log_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "repmpi_sweep_" + name +
                           ".bin";
  std::remove(path.c_str());
  std::remove((path + ".blob").c_str());
  return path;
}

std::string sweep_cmd(const std::string& log, const std::string& extra = "") {
  return std::string(REPMPI_SWEEP_BIN) + " --log=" + log + kParams +
         (extra.empty() ? "" : " " + extra);
}

std::string dump(const std::string& log) {
  const CmdResult r =
      run_cmd(std::string(REPMPI_SWEEP_BIN) + " --dump --log=" + log);
  EXPECT_EQ(r.code, 0) << r.output;
  return r.output;
}

std::size_t count_lines_with(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

class SweepTool : public ::testing::Test {
 protected:
  // One clean reference sweep shared by every bit-identity comparison.
  static void SetUpTestSuite() {
    const std::string log = log_path("reference");
    const CmdResult r = run_cmd(sweep_cmd(log));
    ASSERT_EQ(r.code, 0) << r.output;
    clean_dump_ = new std::string(dump(log));
    ASSERT_EQ(count_lines_with(*clean_dump_, " ok "), 14u);
  }
  static void TearDownTestSuite() {
    delete clean_dump_;
    clean_dump_ = nullptr;
  }
  static const std::string* clean_dump_;
};
const std::string* SweepTool::clean_dump_ = nullptr;

TEST_F(SweepTool, CleanSweepCompletesEveryCell) {
  const std::string log = log_path("clean");
  const CmdResult r = run_cmd(sweep_cmd(log));
  EXPECT_EQ(r.code, 0) << r.output;
  EXPECT_NE(r.output.find("14/14 cells ok"), std::string::npos) << r.output;
  EXPECT_EQ(dump(log), *clean_dump_);
}

TEST_F(SweepTool, RefusesToClobberAnExistingLog) {
  const std::string log = log_path("clobber");
  ASSERT_EQ(run_cmd(sweep_cmd(log)).code, 0);
  const CmdResult r = run_cmd(sweep_cmd(log));
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.output.find("--resume"), std::string::npos) << r.output;
  // --overwrite discards and reruns cleanly.
  EXPECT_EQ(run_cmd(sweep_cmd(log, "--overwrite")).code, 0);
}

TEST_F(SweepTool, BadOptionValuesExitTwo) {
  const std::string log = log_path("usage");
  EXPECT_EQ(run_cmd(sweep_cmd(log, "--jobs=abc")).code, 2);
  EXPECT_EQ(run_cmd(sweep_cmd(log, "--jobs=0")).code, 2);
  EXPECT_EQ(run_cmd(sweep_cmd(log, "--timeout-sec=0")).code, 2);
  EXPECT_EQ(run_cmd(sweep_cmd(log, "--max-attempts=100")).code, 2);
  EXPECT_EQ(run_cmd(std::string(REPMPI_SWEEP_BIN) +
                    " --worker --cell=not.a.key")
                .code,
            2);
}

TEST_F(SweepTool, SigkillMidSweepThenResumeIsBitIdentical) {
  // The supervisor SIGKILLs itself after durably logging 4 cells — the
  // ISSUE's headline acceptance test. --resume must skip exactly those
  // cells and produce a dump byte-identical to the uninterrupted run.
  const std::string log = log_path("killresume");
  const CmdResult killed = run_cmd(
      "REPMPI_FAULT_SUPERVISOR_KILL_AFTER=4 " + sweep_cmd(log));
  EXPECT_EQ(killed.code, 128 + SIGKILL) << killed.output;

  const CmdResult resumed = run_cmd(sweep_cmd(log, "--resume"));
  EXPECT_EQ(resumed.code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("4 already complete, 10 to run"),
            std::string::npos)
      << resumed.output;
  EXPECT_EQ(dump(log), *clean_dump_);
}

TEST_F(SweepTool, WorkerCrashIsRetriedAndStaysBitIdentical) {
  // One cell's worker SIGKILLs itself on attempt 1 only; the retry must
  // succeed and the final metrics must not depend on the attempt number.
  const std::string log = log_path("workerkill");
  const CmdResult r = run_cmd(
      "REPMPI_FAULT_KILL_CELL=hpccg.l2.d2.none REPMPI_FAULT_KILL_ATTEMPTS=1 " +
      sweep_cmd(log));
  EXPECT_EQ(r.code, 0) << r.output;
  EXPECT_NE(r.output.find("crash"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("retry"), std::string::npos) << r.output;
  EXPECT_EQ(dump(log), *clean_dump_);
}

TEST_F(SweepTool, CorruptOutputIsRetriedAndStaysBitIdentical) {
  const std::string log = log_path("corrupt");
  const CmdResult r = run_cmd(
      "REPMPI_FAULT_CORRUPT_CELL=hpccg.l4.d3.late_crash "
      "REPMPI_FAULT_CORRUPT_ATTEMPTS=1 " +
      sweep_cmd(log));
  EXPECT_EQ(r.code, 0) << r.output;
  EXPECT_NE(r.output.find("corrupt"), std::string::npos) << r.output;
  EXPECT_EQ(dump(log), *clean_dump_);
}

TEST_F(SweepTool, StalledCellTimesOutWhileSweepDegradesGracefully) {
  // One cell hangs on every attempt; with a 1s deadline it exhausts its
  // retries and is reported failed=timeout, the other 13 cells complete,
  // and the sweep exits with the distinct partial-success code 3.
  const std::string log = log_path("stall");
  const CmdResult r = run_cmd(
      "REPMPI_FAULT_STALL_CELL=hpccg.l2.d3.none " +
      sweep_cmd(log, "--timeout-sec=1 --max-attempts=2"));
  EXPECT_EQ(r.code, 3) << r.output;
  EXPECT_NE(r.output.find("13/14 cells ok"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("degraded gracefully"), std::string::npos)
      << r.output;

  const std::string d = dump(log);
  EXPECT_NE(d.find("hpccg.l2.d3.none failed=timeout"), std::string::npos)
      << d;
  EXPECT_EQ(count_lines_with(d, " ok "), 13u);
}

TEST_F(SweepTool, ListCellsPrintsTheFullGrid) {
  const CmdResult r =
      run_cmd(std::string(REPMPI_SWEEP_BIN) + " --list-cells");
  EXPECT_EQ(r.code, 0) << r.output;
  EXPECT_EQ(count_lines_with(r.output, "\n"), 14u);
  EXPECT_EQ(count_lines_with(r.output, "hpccg.l"), 14u);
  EXPECT_NE(r.output.find("hpccg.l2.d1.none\n"), std::string::npos);
  EXPECT_NE(r.output.find("hpccg.l4.d3.late_crash\n"), std::string::npos);
}

TEST_F(SweepTool, VerifyLogCleanCorruptAndMissingExitCodes) {
  // The standalone fsck the chaos CI job runs after every induced kill:
  // exit 0 on a clean log, 3 when corruption was found, 1 when the log
  // cannot be opened at all.
  const std::string log = log_path("verify");
  ASSERT_EQ(run_cmd(sweep_cmd(log)).code, 0);

  const std::string verify_cmd =
      std::string(REPMPI_SWEEP_BIN) + " --verify-log=" + log;
  CmdResult r = run_cmd(verify_cmd);
  EXPECT_EQ(r.code, 0) << r.output;
  EXPECT_NE(r.output.find("verify-log: clean"), std::string::npos)
      << r.output;
  EXPECT_EQ(count_lines_with(r.output, ": ok key="), 14u) << r.output;

  // Tear the tail the way a SIGKILL'd writer would.
  std::FILE* f = std::fopen(log.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const std::string junk(48, 'X');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  r = run_cmd(verify_cmd);
  EXPECT_EQ(r.code, 3) << r.output;
  EXPECT_NE(r.output.find("verify-log: CORRUPT"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("torn trailing record"), std::string::npos)
      << r.output;

  EXPECT_EQ(run_cmd(std::string(REPMPI_SWEEP_BIN) +
                    " --verify-log=/nonexistent/no.bin")
                .code,
            1);
}

TEST_F(SweepTool, TornLogWriteIsRecoveredOnResume) {
  // The log writer dies halfway through its 3rd record append (torn write).
  // Resume must drop the torn tail, re-run that cell and the rest, and end
  // bit-identical to the clean run.
  const std::string log = log_path("tornlog");
  const CmdResult torn =
      run_cmd("REPMPI_FAULT_LOG_ABORT=3 " + sweep_cmd(log));
  EXPECT_EQ(torn.code, 43) << torn.output;  // the injected abort's exit code

  const CmdResult resumed = run_cmd(sweep_cmd(log, "--resume"));
  EXPECT_EQ(resumed.code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("log recovery"), std::string::npos)
      << resumed.output;
  EXPECT_EQ(dump(log), *clean_dump_);
}

}  // namespace
