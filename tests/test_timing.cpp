// End-to-end validation of the virtual-time accounting: measured times of
// simple programs must equal the closed-form predictions of the machine
// model. These tests are what justifies reading the bench outputs as
// measurements.

#include <gtest/gtest.h>

#include <vector>

#include "intra/runtime.hpp"
#include "mpi_test_harness.hpp"
#include "rep_test_harness.hpp"

namespace repmpi {
namespace {

using repmpi::testing::MpiFixture;
using repmpi::testing::RepFixture;

net::MachineModel clean_model() {
  net::MachineModel m;
  m.flop_rate = 1e9;
  m.mem_bandwidth = 1e9;
  m.net_latency = 1e-5;
  m.net_bandwidth = 1e8;
  m.send_overhead = 1e-6;
  m.recv_overhead = 2e-6;
  m.intranode_latency = 1e-6;
  m.intranode_bandwidth = 1e9;
  m.replication_msg_overhead = 5e-7;
  return m;
}

TEST(Timing, ComputeChargesRoofline) {
  MpiFixture f(1, 4, clean_model());
  sim::Time t = -1;
  f.run([&](mpi::Proc& proc, mpi::Comm&) {
    proc.compute({2e6, 1e6});  // flop-bound: 2e6/1e9 = 2 ms
    proc.compute({1e3, 3e6});  // mem-bound: 3e6/1e9 = 3 ms
    t = proc.now();
  });
  EXPECT_NEAR(t, 5e-3, 1e-12);
}

TEST(Timing, BlockingSendRecvEquation) {
  // Receiver completion = send_overhead + size/bw + latency + recv_overhead
  // + memcpy(size). Sender completion = send_overhead only (eager).
  const net::MachineModel m = clean_model();
  MpiFixture f(8, 4, m);  // ranks 0 and 4 are on different nodes
  sim::Time t_send = -1, t_recv = -1;
  constexpr std::size_t kBytes = 100000;
  f.run([&](mpi::Proc& proc, mpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> payload(kBytes);
      comm.send(4, 1, payload);
      t_send = proc.now();
    } else if (comm.rank() == 4) {
      support::Buffer buf;
      comm.recv(0, 1, buf);
      t_recv = proc.now();
    }
  });
  EXPECT_NEAR(t_send, m.send_overhead, 1e-12);
  const double expected_recv = m.send_overhead + kBytes / m.net_bandwidth +
                               m.net_latency + m.recv_overhead +
                               kBytes / m.mem_bandwidth;
  EXPECT_NEAR(t_recv, expected_recv, 1e-9);
}

TEST(Timing, SharedNicSerializesConcurrentSenders) {
  // Two same-node ranks each send 100 KB to the same remote node at t=0:
  // the second transfer queues behind the first on the shared NIC.
  const net::MachineModel m = clean_model();
  MpiFixture f(8, 4, m);
  std::vector<sim::Time> recv_times;
  constexpr std::size_t kBytes = 100000;
  f.run([&](mpi::Proc& proc, mpi::Comm& comm) {
    if (comm.rank() == 0 || comm.rank() == 1) {
      std::vector<std::byte> payload(kBytes);
      comm.send(comm.rank() + 4, 1, payload);
    } else if (comm.rank() == 4 || comm.rank() == 5) {
      support::Buffer buf;
      comm.recv(comm.rank() - 4, 1, buf);
      recv_times.push_back(proc.now());
    }
  });
  ASSERT_EQ(recv_times.size(), 2u);
  const double wire = kBytes / m.net_bandwidth;
  const double first = std::min(recv_times[0], recv_times[1]);
  const double second = std::max(recv_times[0], recv_times[1]);
  EXPECT_NEAR(second - first, wire, 1e-6);  // serialized, one wire apart
}

TEST(Timing, ReplicationOverheadPerLogicalSend) {
  // A degree-2 logical send charges the sender the protocol overhead plus
  // one physical send (lane-parallel mirroring: one copy per lane pair).
  const net::MachineModel m = clean_model();
  RepFixture f(2, 2, m);
  sim::Time t_sender = -1;
  f.run([&](mpi::Proc& proc, rep::LogicalComm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 42);
      if (comm.lane() == 0) t_sender = proc.now();
    } else {
      comm.recv_value<int>(0, 1);
    }
  });
  EXPECT_NEAR(t_sender, m.replication_msg_overhead + m.send_overhead, 1e-12);
}

TEST(Timing, IntraSectionSharesComputeExactly) {
  // Two replicas, 2 equal tasks, negligible updates: section time =
  // one task's compute + the update exchange tail.
  net::MachineModel m = clean_model();
  RepFixture f(1, 2, m);
  sim::Time t = -1;
  f.run([&](mpi::Proc& proc, rep::LogicalComm& comm) {
    intra::Runtime rt(comm, {.mode = intra::Runtime::Mode::kShared});
    std::vector<double> out(2, 0.0);
    {
      intra::Section s(rt);
      const int id = rt.register_task(
          [](intra::TaskArgs& a) -> net::ComputeCost {
            a.scalar<double>(0) = 1.0;
            return {1e6, 0.0};  // 1 ms at 1 Gflop/s
          },
          {{intra::ArgTag::kOut, 8}});
      rt.launch(id, {intra::Binding::scalar(out[0])});
      rt.launch(id, {intra::Binding::scalar(out[1])});
    }
    t = std::max(t, proc.now());
  });
  // All-local would be 2 ms of compute; shared must be ~1 ms + exchange of
  // one 8-byte update each way (overheads + latency, < 0.1 ms here).
  EXPECT_GT(t, 1.0e-3);
  EXPECT_LT(t, 1.2e-3);
}

TEST(Timing, AllLocalModeChargesFullCompute) {
  net::MachineModel m = clean_model();
  RepFixture f(1, 2, m);
  sim::Time t = -1;
  f.run([&](mpi::Proc& proc, rep::LogicalComm& comm) {
    intra::Runtime rt(comm, {.mode = intra::Runtime::Mode::kAllLocal});
    std::vector<double> out(2, 0.0);
    {
      intra::Section s(rt);
      const int id = rt.register_task(
          [](intra::TaskArgs& a) -> net::ComputeCost {
            a.scalar<double>(0) = 1.0;
            return {1e6, 0.0};
          },
          {{intra::ArgTag::kOut, 8}});
      rt.launch(id, {intra::Binding::scalar(out[0])});
      rt.launch(id, {intra::Binding::scalar(out[1])});
    }
    t = std::max(t, proc.now());
  });
  EXPECT_NEAR(t, 2.0e-3, 1e-5);  // both tasks, no exchange
}

TEST(Timing, InOutCopyChargedOnReceiveSide) {
  // The Fig.-2 pre-copy costs memcpy_time(bytes) on the lane receiving the
  // update, visible in IntraStats::inout_copy_time.
  net::MachineModel m = clean_model();
  RepFixture f(1, 2, m);
  constexpr std::size_t kElems = 1 << 12;
  double copy_time = -1;
  f.run([&](mpi::Proc&, rep::LogicalComm& comm) {
    intra::Runtime rt(comm, {.mode = intra::Runtime::Mode::kShared});
    std::vector<double> v(2 * kElems, 1.0);
    {
      intra::Section s(rt);
      const int id = rt.register_task(
          [](intra::TaskArgs& a) -> net::ComputeCost {
            for (double& x : a.get<double>(0)) x *= 2.0;
            return {1.0, 8.0};
          },
          {{intra::ArgTag::kInOut, 8}});
      rt.launch(id, {intra::Binding::of(
                        std::span<double>(v).subspan(0, kElems))});
      rt.launch(id, {intra::Binding::of(
                        std::span<double>(v).subspan(kElems, kElems))});
    }
    if (comm.lane() == 0) copy_time = rt.stats().inout_copy_time;
  });
  // Lane 0 receives one task's update: pre-copy of kElems doubles.
  EXPECT_NEAR(copy_time, kElems * 8.0 / m.mem_bandwidth, 1e-9);
}

}  // namespace
}  // namespace repmpi
