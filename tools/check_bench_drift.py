#!/usr/bin/env python3
"""Diff a repmpi-bench-report JSON against the committed baseline.

Usage: check_bench_drift.py <report.json> <baseline.json> [--tolerance=0.01]

Compares every headline metric recorded by the benches (the `metrics` maps in
a `repmpi-bench-report/1` document) against the baseline and fails on
relative drift above the tolerance (default 1%). All bench metrics are
virtual-time quantities and therefore deterministic for a given source tree
— drift means a perf/semantics regression (or an intentional change, in
which case the baseline must be regenerated with
`repmpi_bench --all --smoke --json bench/baseline_smoke.json`).

Host-dependent fields are excluded from the gate: wall_time_s / wall_ms /
events_per_sec / messages_per_sec per bench, and any metric prefixed
`host_` (the substrate microbench throughputs, the sweep's pool speedup,
and the replica-compute-sharing hit counters). Metrics present only on one
side are reported (new metrics are fine; vanished ones fail). Host wall-time
deltas per bench, the reports' kernel backends (top-level `host_backend`),
and the aggregate host_kernel_*_ns trajectory are printed as informational
notes — they never gate, but they are the at-a-glance perf trajectory
between two reports.

Benches are matched by *name*, never by array position: the driver emits
the array in registry order, but a parallel run (--jobs) or a reordered
baseline must not affect the comparison. Duplicate names in either
document are an error.

Two metric classes get special gating rules (hostile-environment benches):
metrics whose name contains `job_failed` are exact-match — they encode
whether (and when) a seeded fault scenario killed the job, and any change
is a fault-semantics regression, not drift; metrics ending in `_gap` are
measured-vs-model differences that legitimately sit near zero, so they
gate on absolute deviation at the tolerance instead of meaningless
relative drift.

Robustness semantics (crash-safe sweeps): a bench entry with nonzero
status (a failed or timed-out cell) is *skipped with a note* rather than
failing the gate — its metrics are partial garbage and the driver's own
exit code already reports the failure. A report flagged `"partial": true`
(flushed on SIGINT/SIGTERM or --timeout-sec) may be missing baseline
benches; those are noted, not failed. A *non*-partial report missing a
baseline bench still fails: something silently dropped a bench.
"""

import json
import sys


def load(path):
    """Returns (benches_by_name, partial, host_backend) for a report."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "repmpi-bench-report/1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    by_name = {}
    for b in doc["benches"]:
        if b["name"] in by_name:
            sys.exit(f"{path}: duplicate bench entry {b['name']!r}")
        by_name[b["name"]] = b
    return by_name, bool(doc.get("partial", False)), doc.get("host_backend")


def usage_error(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def parse_tolerance(argv):
    """Returns the tolerance, exiting with a usage error (status 2) on a
    malformed or negative value instead of an uncaught ValueError traceback
    (which CI renders as an inscrutable script crash, not a gate verdict)."""
    tolerance = 0.01
    for a in argv[1:]:
        if not a.startswith("--"):
            continue
        if a.startswith("--tolerance="):
            raw = a.split("=", 1)[1]
            try:
                tolerance = float(raw)
            except ValueError:
                usage_error(f"--tolerance expects a number, got {raw!r}")
            if tolerance != tolerance or tolerance < 0:  # NaN or negative
                usage_error(f"--tolerance must be >= 0, got {raw!r}")
        else:
            usage_error(f"unknown option {a!r} "
                        f"(supported: --tolerance=<fraction>)")
    return tolerance


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        sys.exit(__doc__)
    tolerance = parse_tolerance(argv)

    report, report_partial, report_backend = load(args[0])
    baseline, _, baseline_backend = load(args[1])
    failures, notes = [], []

    for name, base in sorted(baseline.items()):
        cur = report.get(name)
        if cur is None:
            if report_partial:
                # A partial report (signal / --timeout-sec flush) legally
                # stops early; absent benches are expected there.
                notes.append(f"{name}: missing from partial report "
                             f"(expected; skipped)")
            else:
                failures.append(f"{name}: bench missing from report")
            continue
        if cur.get("status") != 0:
            # A failed/timed-out cell carries no trustworthy metrics; the
            # bench driver's own exit code already reports the failure, so
            # the drift gate skips it instead of double-erroring.
            notes.append(f"{name}: status {cur.get('status')} — skipped "
                         f"(failed cell; metrics not compared)")
            continue
        for metric, expect in sorted(base.get("metrics", {}).items()):
            if metric.startswith("host_"):
                continue
            got = cur.get("metrics", {}).get(metric)
            if expect is None:
                # The driver serializes inf/nan as JSON null. A null baseline
                # value carries no magnitude to compare against; relative
                # drift is undefined, so skip it loudly rather than crash on
                # abs(None).
                notes.append(f"{name}.{metric}: baseline value is null "
                             f"(non-finite at capture); skipped")
                continue
            if got is None:
                failures.append(
                    f"{name}.{metric}: non-finite in report (null), "
                    f"baseline {expect:.6g}"
                    if metric in cur.get("metrics", {})
                    else f"{name}.{metric}: metric vanished "
                         f"(baseline {expect:.6g})")
                continue
            if "job_failed" in metric:
                # Fault-outcome metrics (did the seeded scenario kill the
                # job, and when): the scenario is fully deterministic, so
                # anything but exact equality is a fault-semantics change.
                if got != expect:
                    failures.append(
                        f"{name}.{metric}: {expect:.6g} -> {got:.6g} "
                        f"(exact-match rule for job_failed metrics)")
                continue
            if metric.endswith("_gap"):
                # Measured-vs-model gaps legitimately hover near zero;
                # relative drift on them is noise amplification. Gate on
                # absolute deviation at the same tolerance.
                if abs(got - expect) > tolerance:
                    failures.append(
                        f"{name}.{metric}: {expect:.6g} -> {got:.6g} "
                        f"(|delta| > {tolerance:g}, gap-metric rule)")
                continue
            if expect == 0:
                # A zero baseline makes relative drift meaningless (0/0) or
                # infinite; gate on absolute deviation at the same tolerance.
                if abs(got) > tolerance:
                    failures.append(
                        f"{name}.{metric}: baseline 0 -> {got:.6g} "
                        f"(|absolute| > {tolerance:g}, zero-baseline rule)")
                continue
            drift = abs(got - expect) / abs(expect)
            if drift > tolerance:
                failures.append(f"{name}.{metric}: {expect:.6g} -> {got:.6g} "
                                f"({drift:.2%} > {tolerance:.0%})")
    for name, cur in sorted(report.items()):
        if name not in baseline:
            notes.append(f"{name}: new bench (not in baseline)")
        else:
            for metric in cur.get("metrics", {}):
                if not metric.startswith("host_") and \
                        metric not in baseline[name].get("metrics", {}):
                    notes.append(f"{name}.{metric}: new metric")

    # Informational host wall-time deltas (never gating: wall time is a
    # property of the host that ran the report, not of the source tree).
    wall_old = wall_new = 0.0
    for name, base in sorted(baseline.items()):
        cur = report.get(name)
        if cur is None:
            continue
        b, c = base.get("wall_ms"), cur.get("wall_ms")
        if not b or not c:
            continue
        wall_old += b
        wall_new += c
        notes.append(f"{name}: wall {b:.0f} ms -> {c:.0f} ms "
                     f"({(c - b) / b:+.1%}, informational)")
    if wall_old > 0 and wall_new > 0:
        notes.append(f"total wall {wall_old:.0f} ms -> {wall_new:.0f} ms "
                     f"({(wall_new - wall_old) / wall_old:+.1%}, "
                     f"informational)")

    # Kernel-backend provenance and host kernel-time trajectory. Never
    # gating — the backend seam's contract is that the virtual-time metrics
    # compared above are identical whatever backend executed the kernels
    # (which is exactly why the same baseline serves --backend=scalar and
    # --backend=avx2 CI passes); host_kernel_*_ns only says how fast the
    # host got through them.
    if report_backend or baseline_backend:
        notes.append(f"host_backend: baseline {baseline_backend or 'n/a'}, "
                     f"report {report_backend or 'n/a'} (informational)")
    kern_old = kern_new = 0.0
    for name, base in sorted(baseline.items()):
        cur = report.get(name)
        if cur is None:
            continue
        for metric, v in base.get("metrics", {}).items():
            if not (metric.startswith("host_kernel_")
                    and metric.endswith("_ns")):
                continue
            got = cur.get("metrics", {}).get(metric)
            if isinstance(v, (int, float)) and isinstance(got, (int, float)):
                kern_old += v
                kern_new += got
    if kern_old > 0 and kern_new > 0:
        notes.append(f"total host kernel time {kern_old / 1e6:.1f} ms -> "
                     f"{kern_new / 1e6:.1f} ms "
                     f"({(kern_new - kern_old) / kern_old:+.1%}, "
                     f"informational)")

    for n in notes:
        print(f"note: {n}")
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) drifted beyond "
              f"{tolerance:.0%}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: all baseline metrics within {tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
