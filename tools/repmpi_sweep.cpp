// repmpi_sweep — crash-safe execution of the paper's scenario sweep.
//
//   repmpi_sweep [--log=F] [--jobs=N] [--nx=N] [--iters=N]
//                [--timeout-sec=N] [--max-attempts=N] [--overwrite]
//   repmpi_sweep --resume [--log=F ...]      skip cells already completed
//   repmpi_sweep --dump [--log=F]            print per-cell results (diffable)
//   repmpi_sweep --verify-log=F              fsck a result log + blob pair
//   repmpi_sweep --list-cells                print the grid's cell keys
//   repmpi_sweep --worker --cell=KEY --nx=N --iters=N   (internal)
//
// The sweep is the (logical procs × replication degree × failure scenario)
// HPCCG grid behind the paper's figures, treated as production traffic: each
// cell runs in its own fork/exec'd worker process under a wall-clock
// deadline, failures are retried with exponential backoff (seeded jitter
// decorrelates simultaneous retries), and every terminal result is appended
// to a crash-safe binary result log (support/result_log.hpp). Killing the
// sweep at ANY instant and rerunning with --resume completes the remaining
// cells; per-cell metrics and determinism fingerprints are bit-identical to
// an uninterrupted run (--dump output is byte-diffable across the two).
//
// --verify-log is the standalone fsck: it walks every record and the blob
// sidecar, reports per-record CRC/framing status plus the truncation point
// a recovery would use, and exits 0 clean / 3 corrupt — the chaos CI job
// runs it after every induced kill.
//
// Exit codes: 0 every cell ok · 1 internal error · 2 usage ·
//             3 partial success (some cells exhausted retries; the rest
//               ran), also --verify-log's "corruption found"
//
// Chaos knobs (all REPMPI_FAULT_*; used by tests/test_sweep_tool.cpp and
// the CI chaos job):
//   REPMPI_FAULT_KILL_CELL=KEY [KILL_ATTEMPTS=n]   worker raises SIGKILL on
//       attempts <= n (default: every attempt)
//   REPMPI_FAULT_STALL_CELL=KEY [STALL_ATTEMPTS=n] [STALL_SEC=s]  worker
//       sleeps s (default 3600) to trip the supervisor deadline
//   REPMPI_FAULT_CORRUPT_CELL=KEY [CORRUPT_ATTEMPTS=n]  worker prints
//       garbage instead of a metrics blob and exits 0
//   REPMPI_FAULT_SUPERVISOR_KILL_AFTER=k   the supervisor SIGKILLs itself
//       after appending k records — the mid-sweep crash --resume recovers
//   REPMPI_FAULT_LOG_ABORT=n   the result log dies mid-record-write after n
//       appends (torn-write recovery test; see result_log.hpp)

#include <signal.h>
#include <unistd.h>

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "apps/hpccg.hpp"
#include "apps/runner.hpp"
#include "support/options.hpp"
#include "support/result_log.hpp"
#include "support/supervisor.hpp"
#include "sweep_common.hpp"

namespace repmpi::tools {
namespace {

using support::CellStatus;
using support::ResultRecord;

void print_usage() {
  std::cout
      << "usage: repmpi_sweep [--log=FILE] [--jobs=N] [--nx=N] [--iters=N]\n"
         "                    [--timeout-sec=N] [--max-attempts=N]\n"
         "                    [--overwrite | --resume]\n"
         "       repmpi_sweep --dump [--log=FILE]\n"
         "       repmpi_sweep --verify-log=FILE\n"
         "       repmpi_sweep --list-cells\n"
         "\n"
         "Runs the (logical x degree x failure) HPCCG scenario grid with\n"
         "process-isolated workers, per-cell deadlines, retry with backoff,\n"
         "and a crash-safe binary result log (default sweep_results.bin).\n"
         "--resume skips cells the log already records as ok and re-runs\n"
         "the rest; results are bit-identical to an uninterrupted run.\n"
         "--dump prints the log one diffable line per cell.\n"
         "--verify-log walks a log + blob pair and reports per-record\n"
         "CRC/framing status and the recovery truncation point.\n"
         "--list-cells prints the grid's cell keys (a request trace for\n"
         "repmpi_sweepctl replay).\n"
         "exit: 0 all ok, 1 internal error, 2 usage, 3 partial success /\n"
         "      verify-log corruption\n";
}

// --- Worker mode ------------------------------------------------------------

long env_long(const char* name, long def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::strtol(v, nullptr, 10);
}

/// True when the env-selected fault cell matches and the current attempt is
/// within the knob's attempt budget (default: fault every attempt).
bool fault_knob_armed(const std::string& key, const char* cell_env,
                      const char* attempts_env) {
  const char* cell = std::getenv(cell_env);
  if (cell == nullptr || key != cell) return false;
  const long attempt = env_long("REPMPI_SWEEP_ATTEMPT", 1);
  return attempt <= env_long(attempts_env, LONG_MAX);
}

/// Runs one cell in-process and prints the deterministic metrics blob (one
/// JSON line) to stdout. This is what the supervisor fork/execs.
int run_worker(const support::Options& opt) {
  const std::string key = opt.get("cell");
  Cell cell;
  if (!parse_key(key, &cell)) {
    std::cerr << "repmpi_sweep: bad --cell key '" << key << "'\n";
    return 2;
  }

  if (fault_knob_armed(key, "REPMPI_FAULT_KILL_CELL",
                       "REPMPI_FAULT_KILL_ATTEMPTS"))
    ::raise(SIGKILL);
  if (fault_knob_armed(key, "REPMPI_FAULT_STALL_CELL",
                       "REPMPI_FAULT_STALL_ATTEMPTS"))
    ::sleep(static_cast<unsigned>(env_long("REPMPI_FAULT_STALL_SEC", 3600)));
  if (fault_knob_armed(key, "REPMPI_FAULT_CORRUPT_CELL",
                       "REPMPI_FAULT_CORRUPT_ATTEMPTS")) {
    std::printf("!! corrupted output, not a metrics blob !!\n");
    return 0;
  }

  const int nx = static_cast<int>(opt.get_int("nx", 8));
  const int iters = static_cast<int>(opt.get_int("iters", 4));

  fault::FaultPlan plan;
  if (cell.scenario == "early_crash") {
    // A replica (plane 1 of logical rank 0) dies right after its 2nd task.
    plan.add({.world_rank = cell.logical,
              .site = fault::CrashSite::kAfterTaskExec, .nth = 2});
  } else if (cell.scenario == "late_crash") {
    // Same replica dies mid-update deep into the run.
    plan.add({.world_rank = cell.logical,
              .site = fault::CrashSite::kBetweenArgSends, .nth = 4 * iters});
  }

  apps::RunConfig cfg;
  cfg.mode = cell.degree == 1 ? apps::RunMode::kNative : apps::RunMode::kIntra;
  cfg.num_logical = cell.logical;
  cfg.degree = cell.degree;
  if (!plan.empty()) cfg.faults = &plan;

  apps::HpccgParams p;
  p.nx = p.ny = nx;
  p.nz = 2 * nx;
  p.iterations = iters;

  // Determinism fingerprint: the solver's numeric outcome (same probe as
  // the app crash-sweep tests). Captured from the first rank to report.
  double fingerprint = 0;
  bool captured = false;
  const apps::RunResult r = apps::run_app(cfg, [&](apps::AppContext& ctx) {
    const apps::HpccgResult hr = apps::hpccg(ctx, p);
    if (!captured) {
      fingerprint = hr.rnorm + hr.xsum;
      captured = true;
    }
  });

  // One-line JSON, full precision: every field is a virtual-time quantity,
  // bit-identical however many times (or on which attempt) the cell runs.
  std::printf(
      "{\"key\": \"%s\", \"wallclock\": %.17g, \"events\": %llu, "
      "\"messages\": %llu, \"fingerprint\": %.17g}\n",
      key.c_str(), r.wallclock, static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.net_messages), fingerprint);
  return 0;
}

// --- Dump mode --------------------------------------------------------------

int run_dump(const std::string& log_path) {
  support::ResultLogReader reader(log_path);
  std::map<std::string, ResultRecord> latest;
  ResultRecord rec;
  std::size_t n = 0;
  while (reader.next(&rec)) {
    latest[rec.key] = std::move(rec);
    ++n;
  }
  if (n == 0 && !reader.dropped_tail()) {
    std::cerr << "repmpi_sweep: no records in " << log_path << "\n";
    return 1;
  }
  dump_cells(latest);
  if (reader.dropped_tail())
    std::fprintf(stderr, "repmpi_sweep: note: log has a torn tail "
                         "(recoverable; a writer was killed mid-append)\n");
  return 0;
}

// --- Supervisor mode --------------------------------------------------------

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

bool file_nonempty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0;
}

int run_sweep(const support::Options& opt, const char* argv0) {
  // Out-of-range values are an error, not a silent clamp (same policy as
  // repmpi_bench --jobs/--shards).
  const auto ranged = [&opt](const char* key, long def, long lo, long hi,
                             long& out) {
    out = opt.get_int(key, def);
    if (out < lo || out > hi) {
      std::cerr << "repmpi_sweep: --" << key << "=" << out
                << " out of range [" << lo << ", " << hi << "]\n";
      return false;
    }
    return true;
  };
  long jobs = 0, nx = 0, iters = 0, timeout_sec = 0, max_attempts = 0;
  if (!ranged("jobs", 2, 1, 256, jobs) || !ranged("nx", 8, 4, 512, nx) ||
      !ranged("iters", 4, 1, 64, iters) ||
      !ranged("timeout-sec", 120, 1, 86400, timeout_sec) ||
      !ranged("max-attempts", 3, 1, 99, max_attempts)) {
    return 2;
  }

  const std::string log_path = opt.get("log", "sweep_results.bin");
  const bool resume = opt.get_bool("resume", false);
  if (opt.get_bool("overwrite", false)) {
    ::unlink(log_path.c_str());
    ::unlink((log_path + ".blob").c_str());
  } else if (!resume && file_nonempty(log_path)) {
    std::cerr << "repmpi_sweep: " << log_path << " already has results; "
              << "use --resume to continue it, --overwrite to discard it, "
              << "or pick another --log path\n";
    return 2;
  }

  support::ResultLog log(log_path);
  if (log.recovered_torn_tail())
    std::cout << "[log recovery: dropped a torn trailing record]\n";

  const auto latest = log.latest_by_key();
  const std::vector<Cell> grid = make_grid();
  const std::string exe = self_exe(argv0);
  std::vector<support::WorkItem> items;
  std::size_t skipped = 0;
  for (const Cell& c : grid) {
    const std::string key = c.key();
    const auto it = latest.find(key);
    if (resume && it != latest.end() && it->second.status == CellStatus::kOk) {
      ++skipped;  // durably completed before the crash — never re-run
      continue;
    }
    support::WorkItem item;
    item.key = key;
    item.argv = {exe, "--worker", "--cell=" + key,
                 "--nx=" + std::to_string(nx),
                 "--iters=" + std::to_string(iters)};
    item.timeout_sec = static_cast<double>(timeout_sec);
    items.push_back(std::move(item));
  }
  std::cout << "sweep: " << grid.size() << " cells, " << skipped
            << " already complete, " << items.size() << " to run on " << jobs
            << " worker process(es) (log: " << log_path << ")\n";

  const long kill_after = env_long("REPMPI_FAULT_SUPERVISOR_KILL_AFTER", -1);
  long appended = 0;

  support::SupervisorConfig cfg;
  cfg.jobs = static_cast<int>(jobs);
  cfg.max_attempts = static_cast<int>(max_attempts);
  // Deterministic retry jitter: cells failing at the same instant (a node
  // brownout stalling every worker at once) spread their retries instead of
  // re-hammering the host in lockstep. Fixed seed = reproducible delays.
  cfg.backoff_jitter_seed = 0x52455053u;
  cfg.log = &std::cout;
  // A clean exit with a blob that isn't this cell's metrics line is corrupt
  // output — retried like any other failure class.
  cfg.validate = [](const support::WorkItem& item, const std::string& out) {
    return out.rfind("{\"key\": \"" + item.key + "\"", 0) == 0 &&
           out.find("\"fingerprint\"") != std::string::npos;
  };
  cfg.on_result = [&](const support::WorkItem&, const support::WorkResult& r) {
    ResultRecord rec;
    rec.key = r.key;
    rec.status = r.status;
    rec.attempts = static_cast<std::uint32_t>(r.attempts);
    rec.code = r.code;
    // Keep the blob deterministic: the metrics line on success, empty on
    // failure (a crashed worker's partial bytes are noise, not results).
    if (r.status == CellStatus::kOk) rec.blob = r.output;
    log.append(rec);
    if (kill_after >= 0 && ++appended >= kill_after) ::raise(SIGKILL);
  };

  support::Supervisor supervisor(cfg);
  supervisor.run(items);

  // Judge the whole grid from the log (covers resumed + just-run cells).
  const auto final_state = log.latest_by_key();
  std::size_t ok = 0;
  std::vector<std::string> failed;
  for (const Cell& c : grid) {
    const auto it = final_state.find(c.key());
    if (it != final_state.end() && it->second.status == CellStatus::kOk) {
      ++ok;
    } else {
      failed.push_back(
          c.key() + " (" +
          (it == final_state.end() ? "missing"
                                   : support::to_string(it->second.status)) +
          ")");
    }
  }
  std::cout << "sweep complete: " << ok << "/" << grid.size()
            << " cells ok\n";
  if (!failed.empty()) {
    std::cout << "failed cells (sweep degraded gracefully, exit 3):\n";
    for (const std::string& f : failed) std::cout << "  " << f << "\n";
    return 3;
  }
  return 0;
}

int driver(int argc, char** argv) {
  support::Options opt(argc, argv,
                       {"jobs", "nx", "iters", "timeout-sec", "max-attempts",
                        "log", "cell", "verify-log"});
  for (const char* key :
       {"jobs", "nx", "iters", "timeout-sec", "max-attempts"}) {
    if (!opt.has(key)) continue;
    const std::string v = opt.get(key);
    if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << "repmpi_sweep: --" << key << " expects a number, got '"
                << (v == "true" ? "" : v) << "'\n";
      return 2;
    }
  }
  if (opt.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  try {
    if (opt.get_bool("worker", false)) return run_worker(opt);
    if (opt.get_bool("dump", false))
      return run_dump(opt.get("log", "sweep_results.bin"));
    if (opt.has("verify-log")) {
      const std::string path = opt.get("verify-log");
      if (path.empty() || path == "true") {
        std::cerr << "repmpi_sweep: --verify-log needs a log path\n";
        return 2;
      }
      const support::LogVerifyReport rep =
          support::verify_result_log(path, &std::cout);
      if (!rep.exists) return 1;
      return rep.clean() ? 0 : 3;
    }
    if (opt.get_bool("list-cells", false)) {
      for (const Cell& c : make_grid()) std::printf("%s\n", c.key().c_str());
      return 0;
    }
    return run_sweep(opt, argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "repmpi_sweep: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace repmpi::tools

int main(int argc, char** argv) { return repmpi::tools::driver(argc, argv); }
