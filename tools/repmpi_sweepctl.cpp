// repmpi_sweepctl — client for the sweep service (repmpi_sweepd) plus the
// offline reader over its result logs.
//
// Daemon commands (need --socket=PATH or --spool=DIR):
//   ping                     liveness probe; prints the daemon banner
//   submit KEY...            durably enqueue cells (acked = accepted)
//   status                   one-line queue/progress summary
//   query-cell KEY           scheduled / done / unknown, for one cell
//   wait [--timeout-sec=N]   poll status until no cell is active
//   drain                    ask the daemon to drain gracefully
//   replay FILE              submit every key in FILE (one per line),
//                            backing off and resubmitting on busy NACKs
//
// Offline commands (operate on result logs; no daemon needed):
//   dump LOG...              diffable per-cell lines, byte-identical to
//                            `repmpi_sweep --dump` for equivalent results
//   query LOG... [--prefix=P] [--status=S] [--failed]
//                [--min-runs=N] [--min-attempts=N]
//   stats LOG...             merged-index summary (per-status counts,
//                            torn logs, total attempts)
//
// Multiple logs merge through support::ResultIndex: later logs win per
// key, run/attempt totals aggregate, torn tails are tolerated (consistent
// prefix only) and reported on stderr.
//
// Exit codes mirror the client RPC outcome classes so scripts (and the
// chaos CI job) can distinguish backpressure from breakage:
//   0 ok · 1 connection/internal error · 2 usage · 4 timed out ·
//   5 protocol error · 6 NACKed (busy / client-cap / draining / bad)

#include <time.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "support/options.hpp"
#include "support/result_index.hpp"
#include "support/sweep_client.hpp"
#include "sweep_common.hpp"

namespace repmpi::tools {
namespace {

using support::CellStatus;
using support::IndexedResult;
using support::ResultIndex;
using support::RpcReply;
using support::RpcStatus;
using support::SweepClient;
using support::SweepClientConfig;
namespace wire = support::wire;

void print_usage() {
  std::cout
      << "usage: repmpi_sweepctl COMMAND [ARGS] [--socket=PATH | --spool=DIR]\n"
         "daemon commands:\n"
         "  ping | status | drain\n"
         "  submit KEY...\n"
         "  query-cell KEY\n"
         "  wait [--timeout-sec=N]\n"
         "  replay TRACE_FILE [--timeout-sec=N]\n"
         "offline commands (merge N result logs via the results index):\n"
         "  dump LOG...\n"
         "  query LOG... [--prefix=P] [--status=S] [--failed]\n"
         "               [--min-runs=N] [--min-attempts=N]\n"
         "  stats LOG...\n"
         "exit: 0 ok, 1 conn/internal error, 2 usage, 4 timeout,\n"
         "      5 protocol error, 6 NACKed\n";
}

int rc_for(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk: return 0;
    case RpcStatus::kConnError: return 1;
    case RpcStatus::kTimeout: return 4;
    case RpcStatus::kProtocolError: return 5;
    case RpcStatus::kNack: return 6;
  }
  return 1;
}

/// Prints a non-ok reply to stderr; returns its exit code.
int report_failure(const char* what, const RpcReply& reply) {
  std::cerr << "repmpi_sweepctl: " << what << ": "
            << support::to_string(reply.status);
  if (reply.status == RpcStatus::kNack)
    std::cerr << " (" << wire::nack_name(reply.nack_code) << ")";
  if (!reply.payload.empty()) std::cerr << ": " << reply.payload;
  std::cerr << "\n";
  return rc_for(reply.status);
}

void sleep_sec(double sec) {
  struct timespec ts{static_cast<time_t>(sec),
                     static_cast<long>((sec - std::floor(sec)) * 1e9)};
  ::nanosleep(&ts, nullptr);
}

/// Extracts `name=<number>` from a daemon status line; -1 when absent.
long status_field(const std::string& line, const std::string& name) {
  const std::string needle = name + "=";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtol(line.c_str() + pos + needle.size(), nullptr, 10);
}

int cmd_wait(SweepClient& client, double timeout_sec) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_sec));
  while (Clock::now() < deadline) {
    const RpcReply reply = client.status();
    if (reply.status == RpcStatus::kOk) {
      const long active = status_field(reply.payload, "active");
      if (active == 0) {
        std::cout << reply.payload << "\n";
        return 0;
      }
    } else if (reply.status == RpcStatus::kProtocolError) {
      return report_failure("wait", reply);
    }
    // Conn errors and timeouts keep polling: a daemon restart mid-wait is
    // exactly the situation wait exists to ride out.
    sleep_sec(0.2);
  }
  std::cerr << "repmpi_sweepctl: wait: cells still active after "
            << timeout_sec << "s\n";
  return 4;
}

int cmd_replay(SweepClient& client, const std::string& trace_path,
               double timeout_sec, std::uint64_t jitter_seed) {
  std::ifstream trace(trace_path);
  if (!trace) {
    std::cerr << "repmpi_sweepctl: cannot open trace " << trace_path << "\n";
    return 2;
  }
  std::vector<std::string> keys;
  std::string line;
  while (std::getline(trace, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    if (!line.empty() && line[0] != '#') keys.push_back(line);
  }

  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_sec));
  // Backpressure loop: a busy/client-cap NACK is the daemon saying "not
  // now", so back off (deterministic jitter, same scheme as the client's
  // retry delays) and resubmit. Any other NACK is a real refusal.
  SweepClientConfig backoff;
  backoff.socket_path = "-";  // only the delay fields are used
  backoff.backoff_base_sec = 0.05;
  backoff.backoff_cap_sec = 0.5;
  backoff.jitter_seed = jitter_seed;
  std::size_t submitted = 0, coalesced = 0, resubmits = 0;
  for (const std::string& key : keys) {
    for (int attempt = 2;; ++attempt) {
      const RpcReply reply = client.submit(key);
      if (reply.status == RpcStatus::kOk) {
        ++submitted;
        if (reply.payload == "coalesced") ++coalesced;
        break;
      }
      const bool backpressure =
          reply.status == RpcStatus::kNack &&
          (reply.nack_code == wire::kNackBusy ||
           reply.nack_code == wire::kNackClientCap);
      if (!backpressure) return report_failure("replay submit", reply);
      if (Clock::now() >= deadline) {
        std::cerr << "repmpi_sweepctl: replay: still backpressured after "
                  << timeout_sec << "s (" << submitted << "/" << keys.size()
                  << " submitted)\n";
        return 4;
      }
      ++resubmits;
      sleep_sec(SweepClient::retry_delay_sec(backoff,
                                             attempt < 12 ? attempt : 12));
    }
  }
  std::cout << "replay: " << submitted << "/" << keys.size()
            << " cell(s) accepted (" << coalesced << " coalesced, "
            << resubmits << " backpressure resubmit(s))\n";
  return 0;
}

// --- Offline commands -------------------------------------------------------

int load_index(const std::vector<std::string>& paths, ResultIndex* index) {
  if (paths.empty()) {
    std::cerr << "repmpi_sweepctl: need at least one result log path\n";
    return 2;
  }
  for (const std::string& path : paths) {
    index->add_log(path);
    if (index->last_log_torn())
      std::cerr << "repmpi_sweepctl: note: " << path
                << " has a torn tail (consistent prefix used)\n";
  }
  return 0;
}

int cmd_dump(const std::vector<std::string>& paths) {
  ResultIndex index;
  if (const int rc = load_index(paths, &index); rc != 0) return rc;
  std::map<std::string, support::ResultRecord> latest;
  for (const IndexedResult* r : index.all()) latest[r->record.key] = r->record;
  dump_cells(latest);
  return 0;
}

bool parse_status(const std::string& name, CellStatus* out) {
  const std::pair<const char*, CellStatus> table[] = {
      {"ok", CellStatus::kOk},           {"crash", CellStatus::kCrash},
      {"timeout", CellStatus::kTimeout}, {"exit", CellStatus::kExit},
      {"corrupt", CellStatus::kCorrupt},
  };
  for (const auto& [n, s] : table) {
    if (name == n) {
      *out = s;
      return true;
    }
  }
  return false;
}

int cmd_query(const std::vector<std::string>& paths,
              const support::Options& opt) {
  ResultIndex index;
  if (const int rc = load_index(paths, &index); rc != 0) return rc;
  support::ResultQuery q;
  q.key_prefix = opt.get("prefix", "");
  q.failed_only = opt.get_bool("failed", false);
  q.min_runs = static_cast<std::uint32_t>(opt.get_int("min-runs", 0));
  q.min_attempts =
      static_cast<std::uint64_t>(opt.get_int("min-attempts", 0));
  if (opt.has("status")) {
    CellStatus s;
    if (!parse_status(opt.get("status"), &s)) {
      std::cerr << "repmpi_sweepctl: --status must be one of "
                   "ok|crash|timeout|exit|corrupt\n";
      return 2;
    }
    q.has_status = true;
    q.status = s;
  }
  for (const IndexedResult* r : index.query(q)) {
    std::printf("%s %s attempts=%u runs=%u total_attempts=%llu code=%d\n",
                r->record.key.c_str(), support::to_string(r->record.status),
                r->record.attempts, r->runs,
                static_cast<unsigned long long>(r->total_attempts),
                r->record.code);
  }
  return 0;
}

int cmd_stats(const std::vector<std::string>& paths) {
  ResultIndex index;
  if (const int rc = load_index(paths, &index); rc != 0) return rc;
  const support::IndexStats s = index.stats();
  std::printf("logs=%zu torn_logs=%zu records=%llu keys=%zu\n", s.logs,
              s.torn_logs, static_cast<unsigned long long>(s.records),
              s.keys);
  std::printf("ok=%llu crash=%llu timeout=%llu exit=%llu corrupt=%llu "
              "total_attempts=%llu\n",
              static_cast<unsigned long long>(s.ok),
              static_cast<unsigned long long>(s.crash),
              static_cast<unsigned long long>(s.timeout),
              static_cast<unsigned long long>(s.exit),
              static_cast<unsigned long long>(s.corrupt),
              static_cast<unsigned long long>(s.total_attempts));
  return 0;
}

int driver(int argc, char** argv) {
  support::Options opt(argc, argv,
                       {"socket", "spool", "timeout-sec", "prefix", "status",
                        "min-runs", "min-attempts", "jitter-seed"});
  const auto& pos = opt.positional();
  if (opt.get_bool("help", false) || pos.empty()) {
    print_usage();
    return pos.empty() && !opt.get_bool("help", false) ? 2 : 0;
  }
  const std::string cmd = pos[0];
  const std::vector<std::string> args(pos.begin() + 1, pos.end());

  try {
    // Offline commands first: they never touch the socket.
    if (cmd == "dump") return cmd_dump(args);
    if (cmd == "query") return cmd_query(args, opt);
    if (cmd == "stats") return cmd_stats(args);

    SweepClientConfig cfg;
    cfg.socket_path = opt.get("socket");
    if (cfg.socket_path.empty()) {
      const std::string spool = opt.get("spool");
      if (!spool.empty() && spool != "true")
        cfg.socket_path = spool + "/sweepd.sock";
    }
    if (cfg.socket_path.empty()) {
      std::cerr << "repmpi_sweepctl: " << cmd
                << " needs --socket=PATH or --spool=DIR\n";
      return 2;
    }
    cfg.jitter_seed =
        static_cast<std::uint64_t>(opt.get_int("jitter-seed", 0x52455031));
    SweepClient client(cfg);

    if (cmd == "ping" || cmd == "status" || cmd == "drain") {
      const RpcReply reply = cmd == "ping"     ? client.hello()
                             : cmd == "status" ? client.status()
                                               : client.drain();
      if (reply.status != RpcStatus::kOk)
        return report_failure(cmd.c_str(), reply);
      std::cout << reply.payload << "\n";
      return 0;
    }
    if (cmd == "submit") {
      if (args.empty()) {
        std::cerr << "repmpi_sweepctl: submit needs at least one cell key\n";
        return 2;
      }
      for (const std::string& key : args) {
        const RpcReply reply = client.submit(key);
        if (reply.status != RpcStatus::kOk)
          return report_failure(("submit " + key).c_str(), reply);
        std::cout << key << ": " << reply.payload << "\n";
      }
      return 0;
    }
    if (cmd == "query-cell") {
      if (args.size() != 1) {
        std::cerr << "repmpi_sweepctl: query-cell needs exactly one key\n";
        return 2;
      }
      const RpcReply reply = client.query(args[0]);
      if (reply.status != RpcStatus::kOk)
        return report_failure("query-cell", reply);
      std::cout << args[0] << ": " << reply.payload << "\n";
      return 0;
    }
    if (cmd == "wait")
      return cmd_wait(client, opt.get_double("timeout-sec", 300.0));
    if (cmd == "replay") {
      if (args.size() != 1) {
        std::cerr << "repmpi_sweepctl: replay needs exactly one trace file\n";
        return 2;
      }
      return cmd_replay(client, args[0], opt.get_double("timeout-sec", 600.0),
                        cfg.jitter_seed);
    }
    std::cerr << "repmpi_sweepctl: unknown command '" << cmd << "'\n";
    print_usage();
    return 2;
  } catch (const support::UsageError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "repmpi_sweepctl: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace repmpi::tools

int main(int argc, char** argv) { return repmpi::tools::driver(argc, argv); }
