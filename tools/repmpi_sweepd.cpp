// repmpi_sweepd — the long-running sweep service: a single-threaded daemon
// that accepts sweep-cell requests over a Unix-domain socket, executes them
// with the process-isolating supervisor, and survives SIGKILL at any
// instant without losing accepted work.
//
//   repmpi_sweepd --spool=DIR [--jobs=N] [--nx=N] [--iters=N]
//                 [--timeout-sec=N] [--max-attempts=N]
//                 [--queue-depth=N] [--client-cap=N] [--sweep-bin=PATH]
//
// The spool directory is the daemon's whole durable state:
//   DIR/sweepd.sock   the listening socket (recreated on start)
//   DIR/results.bin   crash-safe result log (+ .blob) — terminal outcomes
//   DIR/queue.bin     crash-safe request log (+ .blob) — accepted submits
//
// Durability contract: a submit is acked only AFTER its request record is
// flushed to queue.bin. Each request record stores the cell key plus an
// *epoch* (in the record's attempts field): the number of terminal results
// the key had in results.bin when the request was accepted. A request is
// satisfied once the key's terminal-result count exceeds its epoch — so on
// restart the daemon replays queue.bin against results.bin and re-schedules
// exactly the accepted-but-unfinished requests, whether they were queued,
// mid-run, or mid-retry when the previous incarnation died. Re-submitting
// an already-completed cell (count > epoch at submit time is impossible;
// epoch = current count) schedules a fresh run; duplicate submits of a
// still-pending cell coalesce onto one run that satisfies all of them.
//
// Admission control (the explicit-NACK alternative to hanging clients):
//   --queue-depth   max cells not yet terminal; beyond it: NACK busy
//   --client-cap    max in-flight cells per connection: NACK client-cap
//   draining        SIGTERM or a drain command: NACK draining
// Every NACK is a bounded-time answer; the client library never retries
// NACKs internally, so backpressure is visible to callers immediately.
//
// Graceful drain (SIGTERM or `repmpi_sweepctl drain`): stop admitting,
// finish cells that already started (including their retries), park
// never-started cells — they stay durable in queue.bin and the next
// incarnation resumes them — then exit 0.
//
// Chaos knob: REPMPI_FAULT_DAEMON_KILL_AFTER=k — the daemon SIGKILLs
// itself after appending its k-th terminal result, emulating an operator
// `kill -9` mid-service; the chaos CI job restarts it and asserts the
// replayed sweep's dump is byte-identical to an uninterrupted run.

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <poll.h>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/options.hpp"
#include "support/result_log.hpp"
#include "support/supervisor.hpp"
#include "support/sweep_client.hpp"
#include "sweep_common.hpp"

namespace repmpi::tools {
namespace {

using support::CellStatus;
using support::ResultRecord;
namespace wire = support::wire;

volatile sig_atomic_t g_drain_signal = 0;
void on_term_signal(int) { g_drain_signal = 1; }

long env_long(const char* name, long def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::strtol(v, nullptr, 10);
}

void print_usage() {
  std::cout
      << "usage: repmpi_sweepd --spool=DIR [--jobs=N] [--nx=N] [--iters=N]\n"
         "                     [--timeout-sec=N] [--max-attempts=N]\n"
         "                     [--queue-depth=N] [--client-cap=N]\n"
         "                     [--sweep-bin=PATH]\n"
         "\n"
         "Long-running sweep service over DIR/sweepd.sock. Accepted submits\n"
         "are durable (DIR/queue.bin) before they are acked; results land\n"
         "in the crash-safe DIR/results.bin. SIGKILL + restart resumes all\n"
         "accepted-but-unfinished cells; SIGTERM drains gracefully.\n";
}

/// One client connection: framed request/response state plus the set of
/// cells this client submitted that are not yet terminal (the client-cap
/// admission unit).
struct Conn {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  std::map<std::string, int> inflight;  ///< key -> outstanding submits
  bool closing = false;

  std::size_t inflight_total() const {
    std::size_t n = 0;
    for (const auto& [key, c] : inflight) n += static_cast<std::size_t>(c);
    return n;
  }
};

class SweepDaemon {
 public:
  explicit SweepDaemon(const support::Options& opt, const char* argv0);
  ~SweepDaemon();
  int serve();

 private:
  void open_logs();
  void resume_queue();
  void open_socket();
  void begin_drain(const char* why);
  void on_worker_result(const support::WorkItem& item,
                        const support::WorkResult& r);
  void schedule(const std::string& key);
  void poll_sockets(int timeout_ms);
  void handle_frames(Conn& conn);
  wire::Frame dispatch(Conn& conn, const wire::Frame& req);
  wire::Frame handle_submit(Conn& conn, const wire::Frame& req);
  void reply(Conn& conn, const wire::Frame& f);
  void flush(Conn& conn);
  void close_conn(Conn& conn);

  std::string spool_;
  std::string socket_path_;
  std::string sweep_bin_;
  long nx_ = 8;
  long iters_ = 4;
  long timeout_sec_ = 120;
  long queue_depth_ = 64;
  long client_cap_ = 8;

  std::unique_ptr<support::ResultLog> results_;
  std::unique_ptr<support::ResultLog> queue_;
  std::unique_ptr<support::Supervisor> supervisor_;

  /// Terminal-result count per key — the epoch clock queue records are
  /// compared against.
  std::unordered_map<std::string, std::uint64_t> counts_;
  std::map<std::string, ResultRecord> latest_;
  /// Supervisor enqueues not yet terminal, per key (0 or 1 in steady
  /// state: duplicate pending submits coalesce).
  std::unordered_map<std::string, std::uint32_t> outstanding_;
  std::size_t scheduled_total_ = 0;  ///< cells handed to the supervisor

  int listen_fd_ = -1;
  std::deque<Conn> conns_;
  bool draining_ = false;
  long kill_after_ = -1;
  long appended_ = 0;
};

SweepDaemon::SweepDaemon(const support::Options& opt, const char* argv0) {
  spool_ = opt.get("spool");
  if (spool_.empty() || spool_ == "true")
    throw support::UsageError("repmpi_sweepd: --spool=DIR is required");
  ::mkdir(spool_.c_str(), 0777);  // fine if it already exists
  socket_path_ = spool_ + "/sweepd.sock";

  const auto ranged = [&opt](const char* key, long def, long lo, long hi) {
    const long v = opt.get_int(key, def);
    if (v < lo || v > hi)
      throw support::UsageError("repmpi_sweepd: --" + std::string(key) +
                                " out of range");
    return v;
  };
  nx_ = ranged("nx", 8, 4, 512);
  iters_ = ranged("iters", 4, 1, 64);
  timeout_sec_ = ranged("timeout-sec", 120, 1, 86400);
  queue_depth_ = ranged("queue-depth", 64, 1, 100000);
  client_cap_ = ranged("client-cap", 8, 1, 100000);

  // The worker binary: repmpi_sweep --worker, by default the sibling of
  // this executable (both live in the build tree's top level).
  sweep_bin_ = opt.get("sweep-bin");
  if (sweep_bin_.empty() || sweep_bin_ == "true") {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    std::string self = n > 0 ? (buf[n] = '\0', std::string(buf)) : argv0;
    const auto slash = self.rfind('/');
    sweep_bin_ = (slash == std::string::npos ? std::string(".")
                                             : self.substr(0, slash)) +
                 "/repmpi_sweep";
  }

  support::SupervisorConfig cfg;
  cfg.jobs = static_cast<int>(ranged("jobs", 2, 1, 256));
  cfg.max_attempts = static_cast<int>(ranged("max-attempts", 3, 1, 99));
  // Service retries must not self-synchronize: a brownout failing every
  // running cell at once would otherwise retry them in lockstep forever.
  cfg.backoff_jitter_seed = 0x53575044u;  // deterministic per (key, retry)
  cfg.log = &std::cout;
  cfg.validate = [](const support::WorkItem& item, const std::string& out) {
    return out.rfind("{\"key\": \"" + item.key + "\"", 0) == 0 &&
           out.find("\"fingerprint\"") != std::string::npos;
  };
  cfg.on_result = [this](const support::WorkItem& item,
                         const support::WorkResult& r) {
    on_worker_result(item, r);
  };
  supervisor_ = std::make_unique<support::Supervisor>(std::move(cfg));

  kill_after_ = env_long("REPMPI_FAULT_DAEMON_KILL_AFTER", -1);
}

SweepDaemon::~SweepDaemon() {
  for (Conn& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
}

void SweepDaemon::open_logs() {
  results_ = std::make_unique<support::ResultLog>(spool_ + "/results.bin");
  if (results_->recovered_torn_tail())
    std::cout << "[sweepd] results.bin: dropped a torn trailing record "
                 "(previous incarnation died mid-append)\n";
  for (const ResultRecord& r : results_->records()) {
    ++counts_[r.key];
    latest_[r.key] = r;
  }
}

void SweepDaemon::resume_queue() {
  // Replay the durable request log against the result counts: a record
  // with epoch e is satisfied once its key has more than e terminal
  // results. Whatever is left is the work a previous incarnation accepted
  // (and acked) but never finished.
  const std::string qpath = spool_ + "/queue.bin";
  std::map<std::string, std::uint64_t> need;  ///< key -> required count
  std::size_t total = 0, unsatisfied = 0;
  {
    support::ResultLogReader reader(qpath);
    ResultRecord rec;
    while (reader.next(&rec)) {
      ++total;
      const std::uint64_t epoch = rec.attempts;
      const auto it = counts_.find(rec.key);
      const std::uint64_t count = it == counts_.end() ? 0 : it->second;
      if (count > epoch) continue;  // satisfied before the restart
      ++unsatisfied;
      auto [nit, fresh] = need.try_emplace(rec.key, epoch + 1);
      if (!fresh && epoch + 1 > nit->second) nit->second = epoch + 1;
    }
    if (reader.dropped_tail())
      std::cout << "[sweepd] queue.bin: dropped a torn trailing record "
                   "(its submit was never acked — nothing lost)\n";
  }

  if (total > 0 && unsatisfied == 0) {
    // Everything accepted so far is done: compact the request log so it
    // does not grow without bound across incarnations. Queue records have
    // empty blobs, so losing the files here just means an empty queue —
    // which is exactly the state being recorded.
    ::unlink(qpath.c_str());
    ::unlink((qpath + ".blob").c_str());
    std::cout << "[sweepd] queue.bin: compacted (" << total
              << " satisfied request(s) discarded)\n";
  }
  queue_ = std::make_unique<support::ResultLog>(qpath);
  if (queue_->recovered_torn_tail())
    std::cout << "[sweepd] queue.bin: truncated torn tail on reopen\n";

  for (const auto& [key, required] : need) {
    const auto it = counts_.find(key);
    const std::uint64_t have = it == counts_.end() ? 0 : it->second;
    for (std::uint64_t i = have; i < required; ++i) schedule(key);
  }
  if (!need.empty())
    std::cout << "[sweepd] resume: re-scheduled " << need.size()
              << " accepted-but-unfinished cell(s) from queue.bin\n";
}

void SweepDaemon::open_socket() {
  ::unlink(socket_path_.c_str());  // stale socket from a SIGKILL'd run
  struct sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path))
    throw support::UsageError("repmpi_sweepd: spool path too long for a "
                              "Unix socket: " + socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  // CLOEXEC everywhere: worker processes must not inherit the service's
  // sockets (a stalled worker would otherwise hold client connections and
  // the listen socket open long after the daemon is gone).
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  REPMPI_CHECK_MSG(listen_fd_ >= 0, "socket() failed");
  REPMPI_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "bind(" << socket_path_ << ") failed: "
                           << std::strerror(errno));
  REPMPI_CHECK_MSG(::listen(listen_fd_, 64) == 0, "listen() failed");
}

void SweepDaemon::schedule(const std::string& key) {
  Cell cell;
  REPMPI_CHECK_MSG(parse_key(key, &cell), "unparseable queued key " << key);
  support::WorkItem item;
  item.key = key;
  item.argv = {sweep_bin_, "--worker", "--cell=" + key,
               "--nx=" + std::to_string(nx_),
               "--iters=" + std::to_string(iters_)};
  item.timeout_sec = static_cast<double>(timeout_sec_);
  supervisor_->enqueue(std::move(item));
  ++outstanding_[key];
  ++scheduled_total_;
}

void SweepDaemon::on_worker_result(const support::WorkItem&,
                                   const support::WorkResult& r) {
  ResultRecord rec;
  rec.key = r.key;
  rec.status = r.status;
  rec.attempts = static_cast<std::uint32_t>(r.attempts);
  rec.code = r.code;
  if (r.status == CellStatus::kOk) rec.blob = r.output;
  results_->append(rec);  // durable before any bookkeeping sees it
  ++counts_[r.key];
  latest_[r.key] = std::move(rec);
  auto it = outstanding_.find(r.key);
  if (it != outstanding_.end() && it->second > 0 && --it->second == 0)
    outstanding_.erase(it);
  for (Conn& c : conns_) c.inflight.erase(r.key);
  if (kill_after_ >= 0 && ++appended_ >= kill_after_) ::raise(SIGKILL);
}

void SweepDaemon::begin_drain(const char* why) {
  if (draining_) return;
  draining_ = true;
  supervisor_->hold_first_attempts(true);
  std::cout << "[sweepd] draining (" << why << "): finishing "
            << supervisor_->in_flight() << " in-flight cell(s), parking "
            << supervisor_->queued_fresh() << " queued cell(s)\n";
}

wire::Frame SweepDaemon::handle_submit(Conn& conn, const wire::Frame& req) {
  wire::Frame resp;
  resp.request_id = req.request_id;
  const std::string& key = req.payload;
  const auto nack = [&resp](std::uint16_t code, const std::string& detail) {
    resp.type = wire::kNack;
    resp.status = code;
    resp.payload = detail;
    return resp;
  };

  if (draining_) return nack(wire::kNackDraining, "daemon is draining");
  Cell cell;
  if (key.size() > support::ResultLog::kMaxKeyLen || !parse_key(key, &cell))
    return nack(wire::kNackBadRequest, "unparseable cell key");
  if (conn.inflight_total() >= static_cast<std::size_t>(client_cap_) &&
      conn.inflight.count(key) == 0)
    return nack(wire::kNackClientCap, "client in-flight cap reached");
  const bool needs_run = outstanding_.count(key) == 0;
  if (needs_run &&
      supervisor_->active() >= static_cast<std::size_t>(queue_depth_))
    return nack(wire::kNackBusy, "queue depth reached");

  // Durability before the ack: the request record hits disk first, so a
  // SIGKILL after this point cannot lose an acked submit.
  const std::uint64_t epoch = counts_.count(key) ? counts_[key] : 0;
  ResultRecord qrec;
  qrec.key = key;
  qrec.status = CellStatus::kOk;  // unused for queue records
  qrec.attempts = static_cast<std::uint32_t>(epoch);
  try {
    queue_->append(qrec);
  } catch (const std::exception& e) {
    return nack(wire::kNackInternal, e.what());
  }
  if (needs_run) schedule(key);
  ++conn.inflight[key];

  resp.type = wire::kAck;
  resp.payload = needs_run ? "queued" : "coalesced";
  return resp;
}

wire::Frame SweepDaemon::dispatch(Conn& conn, const wire::Frame& req) {
  wire::Frame resp;
  resp.request_id = req.request_id;
  resp.type = wire::kAck;
  char line[256];
  switch (req.type) {
    case wire::kHello:
      std::snprintf(line, sizeof(line), "repmpi_sweepd pid=%ld spool=%s",
                    static_cast<long>(::getpid()), spool_.c_str());
      resp.payload = line;
      return resp;
    case wire::kSubmit:
      return handle_submit(conn, req);
    case wire::kStatus:
      std::snprintf(line, sizeof(line),
                    "active=%zu running=%zu fresh=%zu draining=%d keys=%zu "
                    "results=%llu",
                    supervisor_->active(), supervisor_->running(),
                    supervisor_->queued_fresh(), draining_ ? 1 : 0,
                    latest_.size(),
                    static_cast<unsigned long long>(results_->records().size()));
      resp.payload = line;
      return resp;
    case wire::kQuery: {
      const std::string& key = req.payload;
      if (outstanding_.count(key) > 0) {
        resp.payload = "scheduled";
      } else if (const auto it = latest_.find(key); it != latest_.end()) {
        std::snprintf(line, sizeof(line), "done status=%s attempts=%u code=%d",
                      support::to_string(it->second.status),
                      it->second.attempts, it->second.code);
        resp.payload = line;
      } else {
        resp.payload = "unknown";
      }
      return resp;
    }
    case wire::kDrain:
      begin_drain("drain command");
      resp.payload = "draining";
      return resp;
    default:
      resp.type = wire::kNack;
      resp.status = wire::kNackBadRequest;
      resp.payload = "unknown command type";
      return resp;
  }
}

void SweepDaemon::reply(Conn& conn, const wire::Frame& f) {
  conn.outbuf += wire::encode_frame(f);
  flush(conn);
}

void SweepDaemon::flush(Conn& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.closing = true;  // peer went away
    return;
  }
}

void SweepDaemon::handle_frames(Conn& conn) {
  for (;;) {
    wire::Frame req;
    std::size_t consumed = 0;
    switch (wire::decode_frame(conn.inbuf.data(), conn.inbuf.size(), &req,
                               &consumed)) {
      case wire::DecodeStatus::kFrame:
        conn.inbuf.erase(0, consumed);
        if (req.type == wire::kAck || req.type == wire::kNack) {
          conn.closing = true;  // clients do not send responses
          return;
        }
        reply(conn, dispatch(conn, req));
        continue;
      case wire::DecodeStatus::kCorrupt:
        // A frame that fails magic/CRC checks means the stream is not
        // trustworthy: close rather than guess at resynchronization.
        conn.closing = true;
        return;
      case wire::DecodeStatus::kNeedMore:
        if (conn.inbuf.size() > wire::kHeaderSize + wire::kMaxPayload)
          conn.closing = true;  // oversized frame claim
        return;
    }
  }
}

void SweepDaemon::close_conn(Conn& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  // The client-cap admission unit dies with the connection; its accepted
  // work keeps running (it is durable in queue.bin regardless).
  conn.inflight.clear();
}

void SweepDaemon::poll_sockets(int timeout_ms) {
  std::vector<struct pollfd> fds;
  fds.push_back({listen_fd_, POLLIN, 0});
  for (Conn& c : conns_) {
    short events = POLLIN;
    if (!c.outbuf.empty()) events |= POLLOUT;
    fds.push_back({c.fd, events, 0});
  }
  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) throw support::Error("sweepd: poll() failed");
  if (rc <= 0) return;

  if ((fds[0].revents & POLLIN) != 0) {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;
      Conn c;
      c.fd = fd;
      conns_.push_back(std::move(c));
    }
  }

  for (std::size_t i = 0; i + 1 < fds.size() && i < conns_.size(); ++i) {
    Conn& c = conns_[i];
    const short revents = fds[i + 1].revents;
    if ((revents & POLLOUT) != 0) flush(c);
    if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char buf[65536];
      for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          c.inbuf.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) c.closing = true;  // peer closed
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR)
          c.closing = true;
        break;
      }
      if (!c.closing) handle_frames(c);
    }
  }

  for (std::size_t i = 0; i < conns_.size();) {
    if (conns_[i].closing && conns_[i].outbuf.empty()) {
      close_conn(conns_[i]);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

int SweepDaemon::serve() {
  open_logs();
  resume_queue();
  open_socket();
  std::cout << "[sweepd] serving on " << socket_path_ << " ("
            << latest_.size() << " key(s) on record, "
            << supervisor_->active() << " resumed cell(s))\n";
  std::cout.flush();

  while (true) {
    if (g_drain_signal != 0) begin_drain("SIGTERM");
    if (draining_ && supervisor_->in_flight() == 0) break;
    poll_sockets(20);
    supervisor_->step(0);
  }

  const std::size_t parked = supervisor_->queued_fresh();
  std::cout << "[sweepd] drained: " << results_->records().size()
            << " result(s) on record, " << parked
            << " cell(s) parked for the next incarnation\n";
  return 0;
}

int driver(int argc, char** argv) {
  support::Options opt(argc, argv,
                       {"spool", "jobs", "nx", "iters", "timeout-sec",
                        "max-attempts", "queue-depth", "client-cap",
                        "sweep-bin"});
  if (opt.get_bool("help", false)) {
    print_usage();
    return 0;
  }

  struct sigaction sa{};
  sa.sa_handler = on_term_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    SweepDaemon daemon(opt, argv[0]);
    return daemon.serve();
  } catch (const support::UsageError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "repmpi_sweepd: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace repmpi::tools

int main(int argc, char** argv) { return repmpi::tools::driver(argc, argv); }
