#pragma once

// Shared between repmpi_sweep (one-shot batch sweeps) and the sweep service
// tools (repmpi_sweepd / repmpi_sweepctl): the scenario grid, cell-key
// parsing, and the diffable per-cell dump. The dump format is a contract —
// two equivalent result sets (clean vs killed-and-resumed, one-shot vs
// daemon-served) must print byte-identical text, which is how the chaos CI
// job asserts crash recovery lost and corrupted nothing.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "support/result_log.hpp"

namespace repmpi::tools {

struct Cell {
  int logical = 0;
  int degree = 0;
  std::string scenario;  // none / early_crash / late_crash

  std::string key() const {
    return "hpccg.l" + std::to_string(logical) + ".d" +
           std::to_string(degree) + "." + scenario;
  }
};

/// The grid of bench_sweep: native references first, then every replicated
/// (logical × degree × failure) cell.
inline std::vector<Cell> make_grid() {
  std::vector<Cell> cells;
  const int logicals[] = {2, 4};
  const int degrees[] = {2, 3};
  const char* scenarios[] = {"none", "early_crash", "late_crash"};
  for (int l : logicals) cells.push_back({l, 1, "none"});
  for (int l : logicals)
    for (int d : degrees)
      for (const char* s : scenarios) cells.push_back({l, d, s});
  return cells;
}

inline bool parse_key(const std::string& key, Cell* out) {
  int l = 0, d = 0;
  char scenario[32] = {};
  if (std::sscanf(key.c_str(), "hpccg.l%d.d%d.%31s", &l, &d, scenario) != 3)
    return false;
  out->logical = l;
  out->degree = d;
  out->scenario = scenario;
  return out->key() == key;
}

/// Extracts `"name": <number>` from a metrics blob; NaN when absent.
inline double blob_number(const std::string& blob, const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const auto pos = blob.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(blob.c_str() + pos + needle.size(), nullptr);
}

/// Prints the diffable dump: one line per cell, key-sorted, deterministic
/// fields only (no attempts/wall/host data) — two dumps of equivalent
/// result sets diff clean regardless of crashes, retries, or which service
/// incarnation ran each cell.
inline void dump_cells(
    const std::map<std::string, support::ResultRecord>& latest) {
  // Native reference walls for the efficiency column (fixed-problem
  // protocol, as in the sweep bench).
  std::map<int, double> native_wall;
  for (const auto& [key, r] : latest) {
    Cell c;
    if (r.status == support::CellStatus::kOk && parse_key(key, &c) &&
        c.degree == 1)
      native_wall[c.logical] = blob_number(r.blob, "wallclock");
  }

  for (const auto& [key, r] : latest) {
    if (r.status != support::CellStatus::kOk) {
      std::printf("%s failed=%s code=%d\n", key.c_str(),
                  support::to_string(r.status), r.code);
      continue;
    }
    std::string blob = r.blob;
    while (!blob.empty() && (blob.back() == '\n' || blob.back() == '\r'))
      blob.pop_back();
    Cell c;
    double eff = std::nan("");
    if (parse_key(key, &c)) {
      if (c.degree == 1) {
        eff = 1.0;
      } else if (native_wall.count(c.logical) > 0) {
        eff = apps::efficiency_fixed_problem(
            native_wall[c.logical], blob_number(blob, "wallclock"), c.degree);
      }
    }
    if (std::isnan(eff)) {
      std::printf("%s ok %s efficiency=n/a\n", key.c_str(), blob.c_str());
    } else {
      std::printf("%s ok %s efficiency=%.17g\n", key.c_str(), blob.c_str(),
                  eff);
    }
  }
}

}  // namespace repmpi::tools
