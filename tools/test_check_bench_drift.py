#!/usr/bin/env python3
"""Self-contained checks for tools/check_bench_drift.py (no pytest needed).

Run directly: python3 tools/test_check_bench_drift.py
Exercises the edge cases the gate must not crash or lie on: malformed /
negative --tolerance, unknown options, null (non-finite) metric values on
either side, zero-valued baseline metrics, and missing/zero wall_ms.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_drift.py")


def make_report(metrics, name="b1", status=0, wall_ms=12.5, extra=None,
                partial=False, benches=None, host_backend=None):
    bench = {"name": name, "status": status, "metrics": metrics}
    if wall_ms is not None:
        bench["wall_ms"] = wall_ms
    doc = {"schema": "repmpi-bench-report/1", "partial": partial,
           "benches": benches if benches is not None
           else [bench] + (extra or [])}
    if host_backend is not None:
        doc["host_backend"] = host_backend
    f = tempfile.NamedTemporaryFile("w", suffix=".json", delete=False)
    json.dump(doc, f)
    f.close()
    return f.name


def run(report, baseline, *flags):
    proc = subprocess.run(
        [sys.executable, SCRIPT, report, baseline, *flags],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check(label, ok):
    if not ok:
        print(f"FAIL: {label}")
        sys.exit(1)
    print(f"ok: {label}")


def main():
    base = make_report({"eff": 0.5, "zero": 0.0})

    code, out = run(make_report({"eff": 0.5, "zero": 0.0}), base)
    check("identical reports pass", code == 0 and "OK" in out)

    code, out = run(make_report({"eff": 0.6, "zero": 0.0}), base)
    check("20% drift fails", code == 1 and "eff" in out)

    # Malformed / negative / unknown options: usage error (2), no traceback.
    for flags, label in [(["--tolerance=banana"], "malformed tolerance"),
                         (["--tolerance="], "empty tolerance"),
                         (["--tolerance=-0.5"], "negative tolerance"),
                         (["--tol=0.1"], "unknown option")]:
        code, out = run(base, base, *flags)
        check(f"{label} is a clean usage error",
              code == 2 and "error:" in out and "Traceback" not in out)

    code, out = run(make_report({"eff": 0.5004, "zero": 0.0}), base,
                    "--tolerance=0.01")
    check("explicit tolerance accepted", code == 0)

    # Null metric in the *baseline* (driver serializes inf/nan as null):
    # skipped with a note, not an abs(None) TypeError.
    null_base = make_report({"eff": 0.5, "weird": None})
    code, out = run(make_report({"eff": 0.5, "weird": 1.0}), null_base)
    check("null baseline metric skips with a note",
          code == 0 and "skipped" in out and "Traceback" not in out)

    # Null metric in the *report*: the bench produced a non-finite value now
    # — that is a regression, and the message must say so.
    code, out = run(make_report({"eff": None, "zero": 0.0}), base)
    check("null report metric fails clearly",
          code == 1 and "non-finite" in out and "Traceback" not in out)

    # Zero-valued baseline: zero vs zero passes; zero vs large fails via the
    # absolute-deviation rule rather than dividing by zero.
    code, out = run(make_report({"eff": 0.5, "zero": 0.5}), base)
    check("zero baseline gates on absolute deviation",
          code == 1 and "zero-baseline" in out)

    # Missing and zero wall_ms must not crash the informational notes.
    no_wall_base = make_report({"eff": 0.5}, wall_ms=None)
    code, out = run(make_report({"eff": 0.5}, wall_ms=0.0), no_wall_base)
    check("missing/zero wall_ms tolerated", code == 0)

    # Vanished metric still fails.
    code, out = run(make_report({"eff": 0.5}), base)
    check("vanished metric fails", code == 1 and "vanished" in out)

    # Kernel-backend provenance: a report produced on a different backend
    # with wildly different host_kernel_*_ns values passes — both are
    # informational notes, never gated (the virtual-time metrics are
    # backend-invariant by contract).
    hb_base = make_report({"eff": 0.5, "host_kernel_spmv_ns": 1.0e9},
                          host_backend="scalar")
    code, out = run(make_report({"eff": 0.5, "host_kernel_spmv_ns": 2.5e8},
                                host_backend="avx2"), hb_base)
    check("host_backend + kernel ns are informational only",
          code == 0 and "host_backend: baseline scalar, report avx2" in out
          and "total host kernel time" in out)

    # Reports predating host_backend (no top-level key) stay silent about it.
    code, out = run(make_report({"eff": 0.5, "zero": 0.0}), base)
    check("absent host_backend emits no note",
          code == 0 and "host_backend" not in out)

    # --- Hostile-bench metric classes ---------------------------------------

    # job_failed metrics are exact-match: a 1 -> 0 flip means a seeded fault
    # scenario stopped killing (or started killing) the job — fault
    # semantics, not drift — and even a tiny time-of-death shift fails.
    jf_base = make_report({"job_failed_naive_d0": 1.0,
                           "job_failed_time_d0": 0.00171}, name="hostile")
    code, out = run(make_report({"job_failed_naive_d0": 1.0,
                                 "job_failed_time_d0": 0.00171},
                                name="hostile"), jf_base)
    check("identical job_failed metrics pass", code == 0)
    code, out = run(make_report({"job_failed_naive_d0": 0.0,
                                 "job_failed_time_d0": 0.00171},
                                name="hostile"), jf_base)
    check("job_failed outcome flip fails exactly",
          code == 1 and "exact-match" in out)
    code, out = run(make_report({"job_failed_naive_d0": 1.0,
                                 "job_failed_time_d0": 0.001711},
                                name="hostile"), jf_base)
    check("time-of-death shift below 1% still fails (exact-match)",
          code == 1 and "exact-match" in out)

    # _gap metrics gate on absolute deviation: a gap moving 0.001 -> 0.002
    # is 100% relative drift but well within absolute tolerance, while a
    # gap jumping past the tolerance fails.
    gap_base = make_report({"straggler_x20_gap": 0.001}, name="hostile")
    code, out = run(make_report({"straggler_x20_gap": 0.002},
                                name="hostile"), gap_base)
    check("tiny absolute gap change passes despite 100% relative drift",
          code == 0)
    code, out = run(make_report({"straggler_x20_gap": 0.05},
                                name="hostile"), gap_base)
    check("gap beyond absolute tolerance fails",
          code == 1 and "gap-metric" in out)

    # --- Robustness semantics (crash-safe sweeps) ---------------------------

    # A failed cell (nonzero status, e.g. --timeout-sec killed it) is
    # skipped with a note — even with drifted/garbage metrics — instead of
    # failing the gate on top of the driver's own failure exit.
    code, out = run(make_report({"eff": 9.9, "zero": 5.0}, status=124), base)
    check("failed cell skipped with a note",
          code == 0 and "skipped" in out and "status 124" in out)

    # A partial report (flushed on SIGINT/SIGTERM) may be missing benches;
    # that is noted, not failed.
    code, out = run(make_report({}, benches=[], partial=True), base)
    check("bench missing from partial report is a note",
          code == 0 and "partial report" in out)

    # The same missing bench in a NON-partial report still fails: a full
    # run silently dropping a bench is a regression.
    code, out = run(make_report({}, benches=[], partial=False), base)
    check("bench missing from full report still fails",
          code == 1 and "missing" in out)

    # Old-schema reports (no top-level "partial" key) keep strict semantics.
    old = make_report({"eff": 0.5, "zero": 0.0})
    with open(old) as f:
        doc = json.load(f)
    del doc["partial"]
    doc["benches"] = []
    with open(old, "w") as f:
        json.dump(doc, f)
    code, out = run(old, base)
    check("missing 'partial' key defaults to strict", code == 1)

    print("all checks passed")


if __name__ == "__main__":
    main()
